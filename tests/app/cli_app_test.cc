#include "app/cli_app.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "obs/json.h"

namespace simcard {
namespace {

int RunCli(std::vector<const char*> argv, std::string* out_text = nullptr,
        std::string* err_text = nullptr) {
  argv.insert(argv.begin(), "simcard_cli");
  std::ostringstream out;
  std::ostringstream err;
  const int rc =
      RunCliApp(static_cast<int>(argv.size()), argv.data(), out, err);
  if (out_text != nullptr) *out_text = out.str();
  if (err_text != nullptr) *err_text = err.str();
  return rc;
}

TEST(CliAppTest, NoCommandPrintsUsage) {
  std::string err;
  EXPECT_EQ(RunCli({}, nullptr, &err), 2);
  EXPECT_NE(err.find("usage:"), std::string::npos);
}

TEST(CliAppTest, UnknownCommandFails) {
  std::string err;
  EXPECT_EQ(RunCli({"frobnicate"}, nullptr, &err), 2);
  EXPECT_NE(err.find("unknown command"), std::string::npos);
}

TEST(CliAppTest, GenerateRequiresFlags) {
  std::string err;
  EXPECT_EQ(RunCli({"generate"}, nullptr, &err), 2);
  EXPECT_NE(err.find("--dataset"), std::string::npos);
}

TEST(CliAppTest, GenerateUnknownDatasetFails) {
  const std::string path = testing::TempDir() + "/cli_bad.bin";
  std::string err;
  EXPECT_EQ(RunCli({"generate", "--dataset=nope", ("--out=" + path).c_str()},
                nullptr, &err),
            1);
}

TEST(CliAppTest, FullPipelineGenerateTrainEstimateEvaluate) {
  const std::string data_path = testing::TempDir() + "/cli_data.bin";
  const std::string model_path = testing::TempDir() + "/cli_model.bin";
  std::string out;
  std::string err;

  ASSERT_EQ(RunCli({"generate", "--dataset=glove-sim", "--scale=tiny",
                 ("--out=" + data_path).c_str()},
                &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("wrote"), std::string::npos);

  ASSERT_EQ(RunCli({"train", ("--data=" + data_path).c_str(),
                 "--method=GL-CNN", "--segments=4", "--scale=tiny",
                 ("--out=" + model_path).c_str()},
                &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("trained GL-CNN"), std::string::npos);

  ASSERT_EQ(RunCli({"estimate", ("--data=" + data_path).c_str(),
                 ("--model=" + model_path).c_str(), "--query-row=3",
                 "--tau=0.1"},
                &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("card(row 3"), std::string::npos);

  ASSERT_EQ(RunCli({"evaluate", ("--data=" + data_path).c_str(),
                 ("--model=" + model_path).c_str(), "--segments=4",
                 "--scale=tiny"},
                &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("Q-error"), std::string::npos);
  EXPECT_NE(out.find("mean latency"), std::string::npos);

  std::remove(data_path.c_str());
  std::remove(model_path.c_str());
}

TEST(CliAppTest, MetricsOutWritesValidReport) {
  const std::string data_path = testing::TempDir() + "/cli_data_m.bin";
  const std::string model_path = testing::TempDir() + "/cli_model_m.bin";
  const std::string report_path = testing::TempDir() + "/cli_report_m.json";
  std::string out;
  std::string err;

  ASSERT_EQ(RunCli({"generate", "--dataset=glove-sim", "--scale=tiny",
                 ("--out=" + data_path).c_str()}),
            0);
  ASSERT_EQ(RunCli({"train", ("--data=" + data_path).c_str(), "--segments=4",
                 "--scale=tiny", ("--out=" + model_path).c_str()}),
            0);
  ASSERT_EQ(RunCli({"evaluate", ("--data=" + data_path).c_str(),
                 ("--model=" + model_path).c_str(), "--segments=4",
                 "--scale=tiny", ("--metrics-out=" + report_path).c_str()},
                &out, &err),
            0)
      << err;
  EXPECT_NE(out.find("metrics report -> " + report_path), std::string::npos);

  std::ifstream in(report_path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  auto parsed = obs::JsonValue::Parse(buf.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const obs::JsonValue& root = parsed.value();
  EXPECT_EQ(root.Get("schema").string_value(), "simcard.metrics.v1");
  EXPECT_EQ(root.Get("meta").Get("command").string_value(), "evaluate");
  EXPECT_TRUE(root.Get("counters").Has("gl.queries"));
  EXPECT_GT(root.Get("histograms")
                .Get("eval.query_latency_us")
                .Get("count")
                .number_value(),
            0.0);

  std::remove(data_path.c_str());
  std::remove(model_path.c_str());
  std::remove(report_path.c_str());
}

TEST(CliAppTest, TrainRejectsNonGlMethods) {
  const std::string data_path = testing::TempDir() + "/cli_data2.bin";
  std::string err;
  ASSERT_EQ(RunCli({"generate", "--dataset=glove-sim", "--scale=tiny",
                 ("--out=" + data_path).c_str()}),
            0);
  EXPECT_EQ(RunCli({"train", ("--data=" + data_path).c_str(), "--method=QES",
                 "--scale=tiny", "--out=/tmp/x.bin"},
                nullptr, &err),
            2);
  EXPECT_NE(err.find("GL-family"), std::string::npos);
  std::remove(data_path.c_str());
}

TEST(CliAppTest, EstimateRejectsBadRow) {
  const std::string data_path = testing::TempDir() + "/cli_data3.bin";
  const std::string model_path = testing::TempDir() + "/cli_model3.bin";
  ASSERT_EQ(RunCli({"generate", "--dataset=glove-sim", "--scale=tiny",
                 ("--out=" + data_path).c_str()}),
            0);
  ASSERT_EQ(RunCli({"train", ("--data=" + data_path).c_str(), "--segments=3",
                 "--scale=tiny", ("--out=" + model_path).c_str()}),
            0);
  std::string err;
  EXPECT_EQ(RunCli({"estimate", ("--data=" + data_path).c_str(),
                 ("--model=" + model_path).c_str(), "--query-row=99999999",
                 "--tau=0.1"},
                nullptr, &err),
            2);
  std::remove(data_path.c_str());
  std::remove(model_path.c_str());
}

}  // namespace
}  // namespace simcard
