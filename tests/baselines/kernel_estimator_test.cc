#include "baselines/kernel_estimator.h"

#include <gtest/gtest.h>
#include <algorithm>

#include "eval/harness.h"
#include "support/request_helpers.h"

namespace simcard {
namespace {

using testsupport::EstimateCard;

ExperimentEnv MakeEnv() {
  EnvOptions opts;
  opts.num_segments = 4;
  return std::move(BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
}

TEST(KernelEstimatorTest, RejectsBadFraction) {
  ExperimentEnv env = MakeEnv();
  TrainContext ctx = MakeTrainContext(env);
  KernelEstimator bad(0.0);
  EXPECT_FALSE(bad.Train(ctx).ok());
}

TEST(KernelEstimatorTest, EstimateMonotoneInTau) {
  ExperimentEnv env = MakeEnv();
  KernelEstimator est(0.05);
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est.Train(ctx).ok());
  const float* q = env.workload.test_queries.Row(0);
  double prev = -1.0;
  for (float tau = 0.02f; tau <= 0.6f; tau += 0.02f) {
    const double estimate = EstimateCard(est, q, tau);
    EXPECT_GE(estimate, prev);
    prev = estimate;
  }
}

TEST(KernelEstimatorTest, NoZeroTupleProblem) {
  // Unlike raw sampling, the Gaussian CDF gives every query positive mass.
  ExperimentEnv env = MakeEnv();
  KernelEstimator est(0.01);
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est.Train(ctx).ok());
  const float* q = env.workload.test_queries.Row(2);
  EXPECT_GT(EstimateCard(est, q, 0.05f), 0.0);
}

TEST(KernelEstimatorTest, LargeTauApproachesDatasetSize) {
  ExperimentEnv env = MakeEnv();
  KernelEstimator est(0.10);
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est.Train(ctx).ok());
  const float* q = env.workload.test_queries.Row(1);
  const double estimate = EstimateCard(est, q, 10.0f);  // >> any distance
  EXPECT_NEAR(estimate, static_cast<double>(env.dataset.size()),
              env.dataset.size() * 0.02);
}

TEST(KernelEstimatorTest, RoughlyCalibratedAtModerateSelectivity) {
  ExperimentEnv env = MakeEnv();
  KernelEstimator est(0.10);
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est.Train(ctx).ok());
  // The KDE is a deliberately weak baseline (its bandwidth oversmooths the
  // sharp low-tau region — the paper reports double-digit mean Q-errors for
  // it), so only aggregate calibration is asserted: the median ratio stays
  // within an order of magnitude and no sample is absurd.
  std::vector<double> ratios;
  for (const auto& lq : env.workload.test) {
    const float* q = env.workload.test_queries.Row(lq.row);
    for (const auto& t : lq.thresholds) {
      if (t.card < 10) continue;
      const double ratio = EstimateCard(est, q, t.tau) / t.card;
      EXPECT_LT(ratio, 100.0);
      EXPECT_GT(ratio, 0.01);
      ratios.push_back(ratio);
    }
  }
  ASSERT_GT(ratios.size(), 0u);
  std::sort(ratios.begin(), ratios.end());
  const double median = ratios[ratios.size() / 2];
  EXPECT_LT(median, 10.0);
  EXPECT_GT(median, 0.1);
}

TEST(KernelEstimatorTest, ModelSizeIsSampleBytes) {
  ExperimentEnv env = MakeEnv();
  KernelEstimator est(0.02);
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est.Train(ctx).ok());
  EXPECT_GT(est.ModelSizeBytes(), 0u);
  EXPECT_EQ(est.ModelSizeBytes() % (env.dataset.dim() * sizeof(float)), 0u);
}

}  // namespace
}  // namespace simcard
