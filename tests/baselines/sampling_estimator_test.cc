#include "baselines/sampling_estimator.h"

#include <gtest/gtest.h>
#include <cmath>

#include "eval/harness.h"
#include "index/ground_truth.h"
#include "support/request_helpers.h"

namespace simcard {
namespace {

using testsupport::EstimateCard;

ExperimentEnv MakeEnv() {
  EnvOptions opts;
  opts.num_segments = 4;
  return std::move(BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
}

TEST(SamplingEstimatorTest, RejectsBadFraction) {
  SamplingEstimator bad("bad", 0.0);
  ExperimentEnv env = MakeEnv();
  TrainContext ctx = MakeTrainContext(env);
  EXPECT_FALSE(bad.Train(ctx).ok());
  SamplingEstimator bad2("bad2", 1.5);
  EXPECT_FALSE(bad2.Train(ctx).ok());
}

TEST(SamplingEstimatorTest, FullSampleIsExact) {
  ExperimentEnv env = MakeEnv();
  SamplingEstimator est("Sampling (100%)", 1.0);
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est.Train(ctx).ok());
  GroundTruth gt(&env.dataset);
  const float* q = env.workload.test_queries.Row(0);
  for (float tau : {0.05f, 0.2f, 0.4f}) {
    EXPECT_DOUBLE_EQ(EstimateCard(est, q, tau),
                     static_cast<double>(gt.Count(q, tau)));
  }
}

TEST(SamplingEstimatorTest, EstimateScalesByInverseRatio) {
  ExperimentEnv env = MakeEnv();
  SamplingEstimator est("Sampling (10%)", 0.10);
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est.Train(ctx).ok());
  // Any estimate is a multiple of dataset_size / sample_size.
  const double unit = static_cast<double>(env.dataset.size()) /
                      static_cast<double>(est.sample_rows());
  const float* q = env.workload.test_queries.Row(1);
  const double estimate = EstimateCard(est, q, 0.3f);
  EXPECT_NEAR(std::fmod(estimate, unit), 0.0, 1e-6);
}

TEST(SamplingEstimatorTest, ZeroTupleProblemOnLowSelectivity) {
  // With a 1% sample, most low-selectivity queries hit zero samples —
  // the failure mode that motivates learned estimators (Exp-1).
  ExperimentEnv env = MakeEnv();
  SamplingEstimator est("Sampling (1%)", 0.01);
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est.Train(ctx).ok());
  size_t zeros = 0;
  size_t total = 0;
  for (const auto& lq : env.workload.test) {
    const float* q = env.workload.test_queries.Row(lq.row);
    for (const auto& t : lq.thresholds) {
      if (t.card > 0 && t.card < 20) {
        zeros += EstimateCard(est, q, t.tau) == 0.0;
        ++total;
      }
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(zeros, total / 4);
}

TEST(SamplingEstimatorTest, EqualVariantMatchesTargetBytes) {
  ExperimentEnv env = MakeEnv();
  const size_t target = 64 * 1024;
  auto est = SamplingEstimator::Equal(target);
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est->Train(ctx).ok());
  EXPECT_LE(est->ModelSizeBytes(), target);
  EXPECT_GT(est->ModelSizeBytes(), target / 2);
  EXPECT_EQ(est->Name(), "Sampling (equal)");
}

TEST(SamplingEstimatorTest, HammingFastPathMatchesGroundTruthAtFullSample) {
  EnvOptions opts;
  opts.num_segments = 4;
  auto env =
      std::move(BuildEnvironment("imagenet-sim", Scale::kTiny, opts).value());
  SamplingEstimator est("full", 1.0);
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est.Train(ctx).ok());
  GroundTruth gt(&env.dataset);
  const float* q = env.workload.test_queries.Row(0);
  for (float tau : {0.1f, 0.3f}) {
    EXPECT_DOUBLE_EQ(EstimateCard(est, q, tau),
                     static_cast<double>(gt.Count(q, tau)));
  }
}

TEST(SamplingEstimatorTest, ModelSizeIsSampleBytes) {
  ExperimentEnv env = MakeEnv();
  SamplingEstimator est("Sampling (10%)", 0.10);
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est.Train(ctx).ok());
  EXPECT_EQ(est.ModelSizeBytes(),
            est.sample_rows() * env.dataset.dim() * sizeof(float));
}

}  // namespace
}  // namespace simcard
