#include "baselines/cardnet_estimator.h"

#include <gtest/gtest.h>
#include <cmath>

#include "eval/harness.h"
#include "support/request_helpers.h"

namespace simcard {
namespace {

using testsupport::EstimateCard;

ExperimentEnv MakeEnv(const char* name = "glove-sim") {
  EnvOptions opts;
  opts.num_segments = 4;
  return std::move(BuildEnvironment(name, Scale::kTiny, opts).value());
}

TEST(CardNetTest, TrainRequiresInputs) {
  CardNetEstimator est;
  TrainContext empty;
  EXPECT_FALSE(est.Train(empty).ok());
}

TEST(CardNetTest, TrainsAndEstimates) {
  ExperimentEnv env = MakeEnv();
  CardNetEstimator::Config config;
  config.epochs = 15;
  CardNetEstimator est(config);
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est.Train(ctx).ok());
  EXPECT_GT(est.num_buckets(), 0u);
  const float* q = env.workload.test_queries.Row(0);
  const double estimate = EstimateCard(est, q, 0.2f);
  EXPECT_GE(estimate, 0.0);
  EXPECT_LE(estimate, static_cast<double>(env.dataset.size()));
}

TEST(CardNetTest, MonotoneInTauByConstruction) {
  // The bucketed non-negative-increment decoder makes monotonicity a
  // structural property, matching CardNet's design.
  ExperimentEnv env = MakeEnv();
  CardNetEstimator::Config config;
  config.epochs = 10;
  CardNetEstimator est(config);
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est.Train(ctx).ok());
  for (size_t row = 0; row < 5; ++row) {
    const float* q = env.workload.test_queries.Row(row);
    double prev = -1.0;
    for (float tau = 0.0f; tau <= 0.8f; tau += 0.02f) {
      const double estimate = EstimateCard(est, q, tau);
      EXPECT_GE(estimate, prev - 1e-9) << "tau=" << tau;
      prev = estimate;
    }
  }
}

TEST(CardNetTest, BetterThanChanceOnTraining) {
  ExperimentEnv env = MakeEnv();
  CardNetEstimator::Config config;
  config.epochs = 30;
  CardNetEstimator est(config);
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est.Train(ctx).ok());
  // Mean q-error on *training* samples should be far below the scale of
  // the label range (a constant predictor would be much worse).
  double qsum = 0.0;
  size_t n = 0;
  for (const auto& lq : env.workload.train) {
    const float* q = env.workload.train_queries.Row(lq.row);
    for (const auto& t : lq.thresholds) {
      qsum += QError(EstimateCard(est, q, t.tau), t.card);
      ++n;
    }
  }
  EXPECT_LT(qsum / n, 15.0);
}

TEST(CardNetTest, ModelSizeCountsWeightsAndBuckets) {
  ExperimentEnv env = MakeEnv();
  CardNetEstimator::Config config;
  config.epochs = 2;
  CardNetEstimator est(config);
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est.Train(ctx).ok());
  // d*128 + 128 + 128*64 + 64 + 64*nb + nb + nb floats.
  const size_t d = env.dataset.dim();
  const size_t nb = est.num_buckets();
  const size_t expected =
      (d * 128 + 128 + 128 * 64 + 64 + 64 * nb + nb + nb) * sizeof(float);
  EXPECT_EQ(est.ModelSizeBytes(), expected);
}

TEST(CardNetTest, WorksOnHammingData) {
  ExperimentEnv env = MakeEnv("imagenet-sim");
  CardNetEstimator::Config config;
  config.epochs = 10;
  CardNetEstimator est(config);
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est.Train(ctx).ok());
  auto result = EvaluateSearch(&est, env.workload);
  EXPECT_TRUE(std::isfinite(result.qerror.mean));
}

}  // namespace
}  // namespace simcard
