// Concurrency stress test: reader threads hammer the serving layer while a
// writer thread keeps cloning and hot-swapping the model. Run under TSan
// (scripts/check_sanitize.sh tsan) to prove the snapshot/Apply path is
// data-race free; under plain builds it still checks functional invariants
// (every request answered, estimates finite, epochs monotone per reader).
#include <atomic>
#include <cmath>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "eval/harness.h"
#include "serve/estimation_service.h"
#include "serve/model_registry.h"
#include "support/request_helpers.h"

namespace simcard {
namespace serve {
namespace {

const ExperimentEnv& SharedEnv() {
  static const ExperimentEnv* env = [] {
    EnvOptions opts;
    opts.num_segments = 6;
    return new ExperimentEnv(std::move(
        BuildEnvironment("glove-sim", Scale::kTiny, opts).value()));
  }();
  return *env;
}

GlEstimatorConfig FastConfig(GlEstimatorConfig config) {
  config.local_train.epochs = 15;
  config.global_train.epochs = 15;
  config.tuner.max_trials = 4;
  config.tuner.trial_epochs = 6;
  config.tuner.train_subsample = 200;
  config.tuner.val_subsample = 60;
  config.tune_per_segment = false;
  return config;
}

// Shared body for the hot-swap races below: readers hammer the service
// (single-request or micro-batched, per `options`) while a writer keeps
// publishing freshly loaded clones.
void RunReadersRaceModelSwaps(ServeOptions options) {
  const ExperimentEnv& env = SharedEnv();
  const GlEstimatorConfig config = FastConfig(GlEstimatorConfig::GlCnn());

  auto initial = std::make_shared<GlEstimator>(config);
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(initial->Train(ctx).ok());
  const std::vector<uint8_t> bytes = initial->SaveToBytes();
  ASSERT_FALSE(bytes.empty());

  ModelRegistry registry;
  registry.Publish(std::shared_ptr<const GlEstimator>(initial));

  EstimationService service(&registry, options);

  constexpr int kReaders = 4;
  constexpr int kRequestsPerReader = 60;
  constexpr int kSwaps = 8;

  const Matrix& queries = env.workload.test_queries;
  std::atomic<int> answered{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t last_epoch = 0;
      for (int i = 0; i < kRequestsPerReader; ++i) {
        const size_t row = static_cast<size_t>(r + i) % queries.rows();
        const float* q = queries.Row(row);
        std::vector<float> query(q, q + queries.cols());
        const float tau = 0.3f + 0.05f * static_cast<float>(i % 5);
        EstimateRequest request;
        request.query = std::span<const float>(query);
        request.tau = tau;
        request.options.deadline_ms = 10000.0;
        EstimateResponse response = service.Submit(request).get();
        if (response.status.code() == StatusCode::kUnavailable) {
          continue;  // shed under burst load: acceptable, just not counted
        }
        if (!response.status.ok() || !std::isfinite(response.estimate) ||
            response.estimate < 0.0) {
          failures.fetch_add(1);
          continue;
        }
        // Epochs may only move forward from any single reader's view.
        if (response.model_epoch < last_epoch) failures.fetch_add(1);
        last_epoch = response.model_epoch;
        answered.fetch_add(1);
      }
    });
  }

  // Writer: clone from the serialized image and hot-swap while reads fly.
  std::thread writer([&] {
    for (int i = 0; i < kSwaps; ++i) {
      auto clone = std::make_shared<GlEstimator>(config);
      Status status =
          clone->LoadFromBytes(bytes, GlEstimator::LoadMode::kStrict);
      if (!status.ok()) {
        failures.fetch_add(1);
        return;
      }
      registry.Publish(std::shared_ptr<const GlEstimator>(std::move(clone)));
      std::this_thread::yield();
    }
  });

  for (auto& t : readers) t.join();
  writer.join();
  service.Drain();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(answered.load(), 0);
  EXPECT_EQ(registry.epoch(), static_cast<uint64_t>(kSwaps) + 1);
  EXPECT_EQ(service.pending(), 0u);
}

TEST(ServeStressTest, ReadersRaceModelSwaps) {
  ServeOptions options;
  options.num_threads = 4;
  options.queue_capacity = 256;
  options.default_deadline_ms = 10000.0;
  RunReadersRaceModelSwaps(options);
}

// Same race with micro-batching on: workers coalesce concurrent readers'
// requests into shared EstimateSearchBatch calls while models hot-swap.
// This is the TSan target for the batched worker loop (linger wait, batch
// drain, per-request promise fulfillment).
TEST(ServeStressTest, ReadersRaceModelSwapsMicroBatched) {
  ServeOptions options;
  options.num_threads = 4;
  options.queue_capacity = 256;
  options.default_deadline_ms = 10000.0;
  options.max_batch = 8;
  options.batch_linger_us = 200.0;
  RunReadersRaceModelSwaps(options);
}

TEST(ServeStressTest, ConcurrentEstimatesMatchSerialOnSharedModel) {
  const ExperimentEnv& env = SharedEnv();
  auto est = std::make_shared<GlEstimator>(FastConfig(
      GlEstimatorConfig::GlCnn()));
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est->Train(ctx).ok());
  const std::shared_ptr<const GlEstimator> model = est;

  const Matrix& queries = env.workload.test_queries;
  const size_t n = std::min<size_t>(queries.rows(), 32);
  std::vector<double> serial(n);
  for (size_t i = 0; i < n; ++i) {
    serial[i] = testsupport::EstimateCard(*model, queries.Row(i), 0.5f);
  }

  // The same estimates computed by many threads through the const Apply
  // path must match the serial answers exactly: shared state would show up
  // here (and as a race under TSan).
  constexpr int kThreads = 8;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (size_t i = 0; i < n; ++i) {
        const double got =
            testsupport::EstimateCard(*model, queries.Row(i), 0.5f);
        if (got != serial[i]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace serve
}  // namespace simcard
