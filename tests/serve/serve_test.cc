// Unit tests for the serving layer: registry publish/epoch semantics,
// typed shed and deadline statuses (driven by the serve.* fault sites),
// and the per-segment circuit breaker state machine.
#include "serve/estimation_service.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "eval/harness.h"
#include "obs/metrics.h"
#include "serve/model_registry.h"
#include "support/request_helpers.h"

namespace simcard {
namespace serve {
namespace {

const ExperimentEnv& SharedEnv() {
  static const ExperimentEnv* env = [] {
    EnvOptions opts;
    opts.num_segments = 6;
    return new ExperimentEnv(std::move(
        BuildEnvironment("glove-sim", Scale::kTiny, opts).value()));
  }();
  return *env;
}

GlEstimatorConfig FastConfig(GlEstimatorConfig config) {
  config.local_train.epochs = 15;
  config.global_train.epochs = 15;
  config.tuner.max_trials = 4;
  config.tuner.trial_epochs = 6;
  config.tuner.train_subsample = 200;
  config.tuner.val_subsample = 60;
  config.tune_per_segment = false;
  return config;
}

// One trained model shared across the suite; training dominates test time.
std::shared_ptr<const GlEstimator> SharedModel() {
  static std::shared_ptr<const GlEstimator> model = [] {
    auto est =
        std::make_shared<GlEstimator>(FastConfig(GlEstimatorConfig::GlCnn()));
    TrainContext ctx = MakeTrainContext(SharedEnv());
    EXPECT_TRUE(est->Train(ctx).ok());
    return std::shared_ptr<const GlEstimator>(est);
  }();
  return model;
}

std::vector<float> TestQuery(size_t row = 0) {
  const Matrix& queries = SharedEnv().workload.test_queries;
  const float* q = queries.Row(row);
  return std::vector<float>(q, q + queries.cols());
}

uint64_t CounterValue(const char* name) {
  return obs::GetCounter(name)->Value();
}

// Unified-API submit; the service copies the query, so taking the vector by
// value keeps the span alive exactly long enough.
std::future<EstimateResponse> SubmitQuery(EstimationService& service,
                                          std::vector<float> query, float tau,
                                          double deadline_ms) {
  EstimateRequest request;
  request.query = std::span<const float>(query);
  request.tau = tau;
  request.options.deadline_ms = deadline_ms;
  return service.Submit(request);
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::SetMetricsEnabled(true); }
  void TearDown() override {
    fault::Disable();
    obs::SetMetricsEnabled(false);
  }
};

TEST_F(ServeTest, RegistryPublishAdvancesEpoch) {
  ModelRegistry registry;
  EXPECT_FALSE(registry.has_model());
  EXPECT_EQ(registry.epoch(), 0u);
  EXPECT_EQ(registry.Current().estimator, nullptr);

  EXPECT_EQ(registry.Publish(SharedModel()), 1u);
  EXPECT_TRUE(registry.has_model());
  ModelSnapshot snap = registry.Current();
  EXPECT_EQ(snap.epoch, 1u);
  EXPECT_EQ(snap.estimator.get(), SharedModel().get());

  // Unpublishing (nullptr) still advances the epoch: readers can tell the
  // model they hold has been retired.
  EXPECT_EQ(registry.Publish(nullptr), 2u);
  EXPECT_FALSE(registry.has_model());
  // The old snapshot stays valid — the shared_ptr keeps the model alive.
  EXPECT_NE(snap.estimator, nullptr);
}

TEST_F(ServeTest, SubmitWithoutModelReturnsUnavailable) {
  ModelRegistry registry;
  EstimationService service(&registry, ServeOptions{});
  const uint64_t no_model_before = CounterValue("simcard.serve.no_model");

  EstimateResponse response =
      SubmitQuery(service, TestQuery(), 0.5f, /*deadline_ms=*/1000.0).get();
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(CounterValue("simcard.serve.no_model"), no_model_before + 1);
}

TEST_F(ServeTest, AnswersWithPublishedModel) {
  ModelRegistry registry;
  registry.Publish(SharedModel());
  EstimationService service(&registry, ServeOptions{});

  EstimateResponse response =
      SubmitQuery(service, TestQuery(), 0.5f, /*deadline_ms=*/10000.0).get();
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(std::isfinite(response.estimate));
  EXPECT_GE(response.estimate, 0.0);
  EXPECT_EQ(response.model_epoch, 1u);
  EXPECT_GE(response.total_us, response.eval_us);

  // Sanity: the served estimate matches a direct synchronous call.
  std::vector<float> q = TestQuery();
  const double direct =
      testsupport::EstimateCard(*SharedModel(), q.data(), 0.5f);
  EXPECT_DOUBLE_EQ(response.estimate, direct);
}

TEST_F(ServeTest, ZeroCapacityShedsEveryRequest) {
  ModelRegistry registry;
  registry.Publish(SharedModel());
  ServeOptions options;
  options.queue_capacity = 0;
  EstimationService service(&registry, options);
  const uint64_t shed_before = CounterValue("simcard.serve.shed");

  for (int i = 0; i < 3; ++i) {
    EstimateResponse response =
        SubmitQuery(service, TestQuery(), 0.5f, /*deadline_ms=*/1000.0).get();
    EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(CounterValue("simcard.serve.shed"), shed_before + 3);
}

TEST_F(ServeTest, QueueFullFaultForcesShed) {
  ModelRegistry registry;
  registry.Publish(SharedModel());
  EstimationService service(&registry, ServeOptions{});

  fault::FaultConfig config;
  config.sites = "serve.queue_full";
  config.probability = 1.0;
  fault::Configure(config);
  const uint64_t shed_before = CounterValue("simcard.serve.shed");

  EstimateResponse response =
      SubmitQuery(service, TestQuery(), 0.5f, /*deadline_ms=*/1000.0).get();
  EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(CounterValue("simcard.serve.shed"), shed_before + 1);

  fault::Disable();
  EXPECT_TRUE(
      SubmitQuery(service, TestQuery(), 0.5f, /*deadline_ms=*/10000.0).get()
          .status.ok());
}

TEST_F(ServeTest, SlowEvalFaultExceedsDeadline) {
  ModelRegistry registry;
  registry.Publish(SharedModel());
  EstimationService service(&registry, ServeOptions{});

  fault::FaultConfig config;
  config.sites = "serve.slow_eval";
  config.probability = 1.0;
  fault::Configure(config);
  const uint64_t exceeded_before =
      CounterValue("simcard.serve.deadline_exceeded");

  EstimateResponse response =
      SubmitQuery(service, TestQuery(), 0.5f, /*deadline_ms=*/5.0).get();
  EXPECT_EQ(response.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(CounterValue("simcard.serve.deadline_exceeded"),
            exceeded_before + 1);

  fault::Disable();
  EXPECT_TRUE(
      SubmitQuery(service, TestQuery(), 0.5f, /*deadline_ms=*/10000.0).get()
          .status.ok());
}

TEST_F(ServeTest, BreakerTripsOnLocalFailuresAndRecovers) {
  ModelRegistry registry;
  registry.Publish(SharedModel());
  ServeOptions options;
  options.breaker_failure_threshold = 2;
  options.breaker_cooldown_requests = 2;
  EstimationService service(&registry, options);

  // Make every local-model evaluation return NaN: the estimator falls back
  // per request, and the breaker counts consecutive failures per segment.
  fault::FaultConfig config;
  config.sites = "gl.local_eval";
  config.probability = 1.0;
  fault::Configure(config);
  const uint64_t open_before = CounterValue("simcard.serve.breaker_open");

  for (int i = 0; i < 6; ++i) {
    EstimateResponse response =
        SubmitQuery(service, TestQuery(), 0.5f, /*deadline_ms=*/10000.0).get();
    // Fallback still produces an answer; the request itself succeeds.
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_TRUE(std::isfinite(response.estimate));
  }
  EXPECT_GT(service.breaker()->trips(), 0u);
  EXPECT_GT(CounterValue("simcard.serve.breaker_open"), open_before);
  bool any_open = false;
  for (size_t s = 0; s < SharedModel()->num_local_models(); ++s) {
    any_open = any_open || service.breaker()->IsOpen(s);
  }
  EXPECT_TRUE(any_open);

  // Heal the locals: cooldown slots burn down, the half-open probe succeeds,
  // and every breaker this query touched closes again.
  fault::Disable();
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(
        SubmitQuery(service, TestQuery(), 0.5f, /*deadline_ms=*/10000.0).get()
            .status.ok());
  }
  for (size_t s = 0; s < SharedModel()->num_local_models(); ++s) {
    EXPECT_FALSE(service.breaker()->IsOpen(s)) << "segment " << s;
  }
}

TEST_F(ServeTest, BreakerStateMachineDirect) {
  SegmentCircuitBreaker breaker(/*failure_threshold=*/2,
                                /*cooldown_requests=*/3, /*max_segments=*/4);
  EXPECT_FALSE(breaker.ForceFallback(0));
  breaker.OnLocalResult(0, false);
  EXPECT_FALSE(breaker.IsOpen(0));  // one failure: below threshold
  breaker.OnLocalResult(0, false);
  EXPECT_TRUE(breaker.IsOpen(0));  // second consecutive failure trips it
  EXPECT_EQ(breaker.trips(), 1u);

  // Cooldown: two short-circuits, then the third request probes.
  EXPECT_TRUE(breaker.ForceFallback(0));
  EXPECT_TRUE(breaker.ForceFallback(0));
  EXPECT_FALSE(breaker.ForceFallback(0));  // half-open probe
  breaker.OnLocalResult(0, true);          // probe succeeds
  EXPECT_FALSE(breaker.IsOpen(0));

  // A failed probe reopens for another full cooldown.
  breaker.OnLocalResult(0, false);
  breaker.OnLocalResult(0, false);
  ASSERT_TRUE(breaker.IsOpen(0));
  breaker.ForceFallback(0);
  breaker.ForceFallback(0);
  EXPECT_FALSE(breaker.ForceFallback(0));  // probe
  breaker.OnLocalResult(0, false);         // probe fails
  EXPECT_TRUE(breaker.IsOpen(0));
  EXPECT_EQ(breaker.trips(), 3u);

  // Other segments are independent; out-of-range segments are never open.
  EXPECT_FALSE(breaker.IsOpen(1));
  EXPECT_FALSE(breaker.ForceFallback(99));
  EXPECT_FALSE(breaker.IsOpen(99));

  breaker.Reset();
  EXPECT_FALSE(breaker.IsOpen(0));
}

TEST_F(ServeTest, SingleFailureDoesNotTrip) {
  SegmentCircuitBreaker breaker(/*failure_threshold=*/3,
                                /*cooldown_requests=*/2, /*max_segments=*/2);
  breaker.OnLocalResult(0, false);
  breaker.OnLocalResult(0, false);
  breaker.OnLocalResult(0, true);  // success resets the streak
  breaker.OnLocalResult(0, false);
  breaker.OnLocalResult(0, false);
  EXPECT_FALSE(breaker.IsOpen(0));
  EXPECT_EQ(breaker.trips(), 0u);
}

}  // namespace
}  // namespace serve
}  // namespace simcard
