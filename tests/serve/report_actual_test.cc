// Unit tests for online accuracy accounting: ReportActual ticket matching
// (OK / consumed / evicted / never issued / tracking disabled), the
// Q-error windows it feeds (overall, tau bucket, per evaluated segment),
// and the fallback_segments surface on EstimateResponse.
#include <cmath>
#include <future>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "eval/harness.h"
#include "obs/metrics.h"
#include "serve/estimation_service.h"
#include "serve/model_registry.h"
#include "support/request_helpers.h"

namespace simcard {
namespace serve {
namespace {

const ExperimentEnv& SharedEnv() {
  static const ExperimentEnv* env = [] {
    EnvOptions opts;
    opts.num_segments = 6;
    return new ExperimentEnv(std::move(
        BuildEnvironment("glove-sim", Scale::kTiny, opts).value()));
  }();
  return *env;
}

GlEstimatorConfig FastConfig(GlEstimatorConfig config) {
  config.local_train.epochs = 15;
  config.global_train.epochs = 15;
  config.tuner.max_trials = 4;
  config.tuner.trial_epochs = 6;
  config.tuner.train_subsample = 200;
  config.tuner.val_subsample = 60;
  config.tune_per_segment = false;
  return config;
}

// One trained model shared across the suite; training dominates test time.
std::shared_ptr<const GlEstimator> SharedModel() {
  static std::shared_ptr<const GlEstimator> model = [] {
    auto est =
        std::make_shared<GlEstimator>(FastConfig(GlEstimatorConfig::GlCnn()));
    TrainContext ctx = MakeTrainContext(SharedEnv());
    EXPECT_TRUE(est->Train(ctx).ok());
    return std::shared_ptr<const GlEstimator>(est);
  }();
  return model;
}

std::vector<float> TestQuery(size_t row = 0) {
  const Matrix& queries = SharedEnv().workload.test_queries;
  const float* q = queries.Row(row);
  return std::vector<float>(q, q + queries.cols());
}

std::future<EstimateResponse> SubmitQuery(EstimationService& service,
                                          std::vector<float> query, float tau,
                                          double deadline_ms) {
  EstimateRequest request;
  request.query = std::span<const float>(query);
  request.tau = tau;
  request.options.deadline_ms = deadline_ms;
  return service.Submit(request);
}

class ReportActualTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::SetMetricsEnabled(true); }
  void TearDown() override {
    fault::Disable();
    obs::SetMetricsEnabled(false);
  }
};

TEST_F(ReportActualTest, TicketMatchesOnceAndFeedsWindows) {
  ModelRegistry registry;
  registry.Publish(SharedModel());
  EstimationService service(&registry, ServeOptions{});

  EstimateResponse response =
      SubmitQuery(service, TestQuery(), 0.5f, /*deadline_ms=*/10000.0).get();
  ASSERT_TRUE(response.status.ok());
  ASSERT_NE(response.request_id, 0u);

  EXPECT_EQ(service.accuracy().total_reports(), 0u);
  EXPECT_TRUE(
      service.ReportActual(response.request_id, /*true_card=*/40.0).ok());
  EXPECT_EQ(service.accuracy().total_reports(), 1u);

  // The report lands in the overall window with the paper's q-error.
  const obs::QErrorWindow overall = service.accuracy().Overall();
  EXPECT_EQ(overall.reports, 1u);
  EXPECT_NEAR(overall.max,
              obs::QErrorTracker::QError(response.estimate, 40.0), 1e-9);

  // ...and in the per-segment windows of the evaluated segments.
  EXPECT_FALSE(service.accuracy().PerSegment().empty());

  // A ticket is consumed by its first match.
  EXPECT_EQ(service.ReportActual(response.request_id, 40.0).code(),
            StatusCode::kNotFound);
}

TEST_F(ReportActualTest, UnknownAndEvictedTicketsAnswerNotFound) {
  ModelRegistry registry;
  registry.Publish(SharedModel());
  ServeOptions options;
  options.recent_capacity = 2;  // tiny ring: two completions evict the first
  EstimationService service(&registry, options);

  EXPECT_EQ(service.ReportActual(12345, 1.0).code(), StatusCode::kNotFound);

  EstimateResponse first =
      SubmitQuery(service, TestQuery(0), 0.5f, 10000.0).get();
  ASSERT_TRUE(first.status.ok());
  for (size_t row = 1; row <= 2; ++row) {
    ASSERT_TRUE(
        SubmitQuery(service, TestQuery(row), 0.5f, 10000.0).get().status.ok());
  }
  EXPECT_EQ(service.ReportActual(first.request_id, 1.0).code(),
            StatusCode::kNotFound);
}

TEST_F(ReportActualTest, DisabledTrackingAnswersFailedPrecondition) {
  ModelRegistry registry;
  registry.Publish(SharedModel());
  ServeOptions options;
  options.track_accuracy = false;
  EstimationService service(&registry, options);

  EstimateResponse response =
      SubmitQuery(service, TestQuery(), 0.5f, 10000.0).get();
  ASSERT_TRUE(response.status.ok());
  EXPECT_EQ(service.ReportActual(response.request_id, 10.0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.accuracy().total_reports(), 0u);
}

TEST_F(ReportActualTest, FailedRequestsYieldNoTicketMatch) {
  ModelRegistry registry;
  registry.Publish(SharedModel());
  EstimationService service(&registry, ServeOptions{});

  fault::Configure({.sites = "serve.queue_full", .probability = 1.0});
  EstimateResponse shed =
      SubmitQuery(service, TestQuery(), 0.5f, 10000.0).get();
  fault::Disable();
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  // Shed requests are never remembered: the ticket cannot match.
  EXPECT_EQ(service.ReportActual(shed.request_id, 5.0).code(),
            StatusCode::kNotFound);
}

TEST_F(ReportActualTest, TauBucketsSplitByRequestTau) {
  ModelRegistry registry;
  registry.Publish(SharedModel());
  ServeOptions options;
  options.accuracy.tau_edges = {0.4f};
  EstimationService service(&registry, options);

  EstimateResponse low =
      SubmitQuery(service, TestQuery(0), 0.3f, 10000.0).get();
  EstimateResponse high =
      SubmitQuery(service, TestQuery(1), 0.6f, 10000.0).get();
  ASSERT_TRUE(low.status.ok());
  ASSERT_TRUE(high.status.ok());
  ASSERT_TRUE(service.ReportActual(low.request_id, 10.0).ok());
  ASSERT_TRUE(service.ReportActual(high.request_id, 10.0).ok());

  EXPECT_EQ(service.accuracy().TauBucket(0).reports, 1u);
  EXPECT_EQ(service.accuracy().TauBucket(1).reports, 1u);
}

TEST_F(ReportActualTest, FallbackServedRequestsExposeSegmentCount) {
  ModelRegistry registry;
  registry.Publish(SharedModel());
  ServeOptions options;
  options.breaker_failure_threshold = 2;
  options.breaker_cooldown_requests = 8;
  EstimationService service(&registry, options);

  // Healthy request: the response reports zero fallback segments.
  EstimateResponse healthy =
      SubmitQuery(service, TestQuery(), 0.5f, 10000.0).get();
  ASSERT_TRUE(healthy.status.ok());
  EXPECT_EQ(healthy.fallback_segments, 0u);

  // Break every local eval: segments route to the sampling fallback and the
  // response says how many.
  fault::Configure({.sites = "gl.local_eval", .probability = 1.0});
  EstimateResponse degraded =
      SubmitQuery(service, TestQuery(), 0.5f, 10000.0).get();
  ASSERT_TRUE(degraded.status.ok());
  EXPECT_GT(degraded.fallback_segments, 0u);
  EXPECT_TRUE(std::isfinite(degraded.estimate));

  // ReportActual on a fallback-served request still matches and records.
  fault::Disable();
  EXPECT_TRUE(service.ReportActual(degraded.request_id, 25.0).ok());
  EXPECT_EQ(service.accuracy().total_reports(), 1u);
}

}  // namespace
}  // namespace serve
}  // namespace simcard
