// Micro-batching in the serving layer: request coalescing under a linger
// window, batch-vs-single answer parity through the service, per-request
// error isolation inside a batch (serve.batch_eval), and deadline checks
// applied per batch member.
#include "serve/estimation_service.h"

#include <cmath>
#include <future>
#include <memory>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "eval/harness.h"
#include "obs/metrics.h"
#include "serve/model_registry.h"
#include "support/request_helpers.h"

namespace simcard {
namespace serve {
namespace {

const ExperimentEnv& SharedEnv() {
  static const ExperimentEnv* env = [] {
    EnvOptions opts;
    opts.num_segments = 6;
    return new ExperimentEnv(std::move(
        BuildEnvironment("glove-sim", Scale::kTiny, opts).value()));
  }();
  return *env;
}

GlEstimatorConfig FastConfig(GlEstimatorConfig config) {
  config.local_train.epochs = 15;
  config.global_train.epochs = 15;
  config.tuner.max_trials = 4;
  config.tuner.trial_epochs = 6;
  config.tuner.train_subsample = 200;
  config.tuner.val_subsample = 60;
  config.tune_per_segment = false;
  return config;
}

std::shared_ptr<const GlEstimator> SharedModel() {
  static std::shared_ptr<const GlEstimator> model = [] {
    auto est =
        std::make_shared<GlEstimator>(FastConfig(GlEstimatorConfig::GlCnn()));
    TrainContext ctx = MakeTrainContext(SharedEnv());
    EXPECT_TRUE(est->Train(ctx).ok());
    return std::shared_ptr<const GlEstimator>(est);
  }();
  return model;
}

EstimateRequest RequestFor(size_t row, float tau, double deadline_ms) {
  const Matrix& queries = SharedEnv().workload.test_queries;
  EstimateRequest request;
  request.query = std::span<const float>(queries.Row(row), queries.cols());
  request.tau = tau;
  request.options.deadline_ms = deadline_ms;
  return request;
}

class ServeBatchTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::SetMetricsEnabled(true); }
  void TearDown() override {
    fault::Disable();
    obs::SetMetricsEnabled(false);
  }
};

// One worker with a generous linger: a burst submitted together must be
// drained as one batch, every response carrying the coalesced batch size and
// the exact answer the single-query path would give.
TEST_F(ServeBatchTest, BurstCoalescesAndMatchesSinglePath) {
  ModelRegistry registry;
  registry.Publish(SharedModel());
  ServeOptions options;
  options.num_threads = 1;
  options.max_batch = 8;
  options.batch_linger_us = 200000.0;  // 200ms: the burst always coalesces
  EstimationService service(&registry, options);

  constexpr size_t kBurst = 8;
  std::vector<std::future<EstimateResponse>> inflight;
  for (size_t i = 0; i < kBurst; ++i) {
    inflight.push_back(
        service.Submit(RequestFor(i, 0.4f, /*deadline_ms=*/20000.0)));
  }
  const Matrix& queries = SharedEnv().workload.test_queries;
  for (size_t i = 0; i < kBurst; ++i) {
    EstimateResponse response = inflight[i].get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    // All 8 landed before the worker's linger expired, so at least the tail
    // of the burst shares one evaluation.
    if (i == kBurst - 1) {
      EXPECT_GE(response.batch_size, 2u);
    }
    EXPECT_DOUBLE_EQ(
        response.estimate,
        testsupport::EstimateCard(*SharedModel(), queries.Row(i), 0.4f));
  }
  service.Drain();
}

// serve.batch_eval poisons exactly one member (max_injections=1); its batch
// mates must still evaluate and succeed.
TEST_F(ServeBatchTest, PoisonedMemberIsolatedFromBatchMates) {
  ModelRegistry registry;
  registry.Publish(SharedModel());
  ServeOptions options;
  options.num_threads = 1;
  options.max_batch = 8;
  options.batch_linger_us = 200000.0;
  EstimationService service(&registry, options);

  fault::FaultConfig config;
  config.sites = "serve.batch_eval";
  config.probability = 1.0;
  config.max_injections = 1;
  fault::Configure(config);
  const int64_t isolated_before =
      obs::GetCounter("simcard.batch.isolated_errors")->Value();

  constexpr size_t kBurst = 6;
  std::vector<std::future<EstimateResponse>> inflight;
  for (size_t i = 0; i < kBurst; ++i) {
    inflight.push_back(
        service.Submit(RequestFor(i, 0.3f, /*deadline_ms=*/20000.0)));
  }
  size_t failed = 0;
  size_t succeeded = 0;
  for (auto& f : inflight) {
    EstimateResponse response = f.get();
    if (response.status.ok()) {
      ++succeeded;
      EXPECT_TRUE(std::isfinite(response.estimate));
    } else {
      ++failed;
    }
  }
  EXPECT_EQ(failed, 1u);
  EXPECT_EQ(succeeded, kBurst - 1);
  EXPECT_EQ(obs::GetCounter("simcard.batch.isolated_errors")->Value(),
            isolated_before + 1);
  service.Drain();
}

// A query whose length does not match the model's dim gets a typed
// kInvalidArgument instead of undefined behavior, without sinking the batch.
TEST_F(ServeBatchTest, DimMismatchRejectedPerRequest) {
  ModelRegistry registry;
  registry.Publish(SharedModel());
  ServeOptions options;
  options.num_threads = 1;
  options.max_batch = 4;
  options.batch_linger_us = 100000.0;
  EstimationService service(&registry, options);

  std::vector<float> short_query(3, 0.1f);
  EstimateRequest bad;
  bad.query = std::span<const float>(short_query.data(), short_query.size());
  bad.tau = 0.2f;
  bad.options.deadline_ms = 20000.0;

  std::future<EstimateResponse> bad_future = service.Submit(bad);
  std::future<EstimateResponse> good_future =
      service.Submit(RequestFor(0, 0.2f, /*deadline_ms=*/20000.0));

  EstimateResponse bad_response = bad_future.get();
  EstimateResponse good_response = good_future.get();
  EXPECT_EQ(bad_response.status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(good_response.status.ok()) << good_response.status.ToString();
  service.Drain();
}

// max_batch=1 (the default) never reports coalesced batches: the PR3
// single-request semantics are the degenerate case of the batched worker.
TEST_F(ServeBatchTest, MaxBatchOneKeepsSingleSemantics) {
  ModelRegistry registry;
  registry.Publish(SharedModel());
  EstimationService service(&registry, ServeOptions{});

  EstimateResponse response =
      service.Submit(RequestFor(1, 0.5f, /*deadline_ms=*/20000.0)).get();
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.batch_size, 1u);
  const Matrix& queries = SharedEnv().workload.test_queries;
  EXPECT_DOUBLE_EQ(
      response.estimate,
      testsupport::EstimateCard(*SharedModel(), queries.Row(1), 0.5f));
}

}  // namespace
}  // namespace serve
}  // namespace simcard
