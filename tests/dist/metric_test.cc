#include "dist/metric.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace simcard {
namespace {

TEST(MetricTest, NamesAndParsing) {
  for (Metric m : {Metric::kL1, Metric::kL2, Metric::kCosine, Metric::kAngular,
                   Metric::kHamming}) {
    auto parsed = ParseMetric(MetricName(m));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), m);
  }
  EXPECT_FALSE(ParseMetric("nonsense").ok());
}

TEST(MetricTest, L1KnownValue) {
  const float a[] = {1, 2, 3};
  const float b[] = {2, 0, 3};
  EXPECT_FLOAT_EQ(Distance(a, b, 3, Metric::kL1), 3.0f);
}

TEST(MetricTest, L2KnownValue) {
  const float a[] = {0, 0};
  const float b[] = {3, 4};
  EXPECT_FLOAT_EQ(Distance(a, b, 2, Metric::kL2), 5.0f);
}

TEST(MetricTest, CosineOrthogonalAndParallel) {
  const float x[] = {1, 0};
  const float y[] = {0, 1};
  const float x2[] = {2, 0};
  EXPECT_NEAR(Distance(x, y, 2, Metric::kCosine), 1.0f, 1e-6f);
  EXPECT_NEAR(Distance(x, x2, 2, Metric::kCosine), 0.0f, 1e-6f);
}

TEST(MetricTest, AngularRange) {
  const float x[] = {1, 0};
  const float y[] = {0, 1};
  const float neg[] = {-1, 0};
  EXPECT_NEAR(Distance(x, y, 2, Metric::kAngular), 0.5f, 1e-6f);
  EXPECT_NEAR(Distance(x, neg, 2, Metric::kAngular), 1.0f, 1e-6f);
  EXPECT_NEAR(Distance(x, x, 2, Metric::kAngular), 0.0f, 1e-6f);
}

TEST(MetricTest, HammingNormalized) {
  const float a[] = {1, 1, 0, 0};
  const float b[] = {1, 0, 1, 0};
  EXPECT_FLOAT_EQ(Distance(a, b, 4, Metric::kHamming), 0.5f);
}

TEST(MetricTest, JaccardExampleFromPaper) {
  // Paper Section 3.2: universe {a,b,c,d}, u={a,b,c}, v={a,b,d}:
  // Jaccard distance 0.5 == Hamming distance on the binary encodings.
  const float u[] = {1, 1, 1, 0};
  const float v[] = {1, 1, 0, 1};
  EXPECT_FLOAT_EQ(Distance(u, v, 4, Metric::kHamming), 0.5f);
}

TEST(MetricTest, CosineEqualsHalfSquaredL2OnUnitVectors) {
  // Paper identity: dis_cos(u,v) = ||u-v||^2 / 2 for unit vectors.
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    float u[8];
    float v[8];
    for (int i = 0; i < 8; ++i) {
      u[i] = static_cast<float>(rng.NextGaussian());
      v[i] = static_cast<float>(rng.NextGaussian());
    }
    NormalizeRow(u, 8);
    NormalizeRow(v, 8);
    const float cos_dist = Distance(u, v, 8, Metric::kCosine);
    const float l2 = Distance(u, v, 8, Metric::kL2);
    EXPECT_NEAR(cos_dist, l2 * l2 / 2.0f, 1e-4f);
  }
}

// Metric-space axioms on random vectors, for every metric.
class MetricAxiomsTest : public ::testing::TestWithParam<Metric> {};

TEST_P(MetricAxiomsTest, NonNegativityIdentitySymmetryTriangle) {
  const Metric metric = GetParam();
  Rng rng(42);
  const size_t d = 16;
  for (int trial = 0; trial < 50; ++trial) {
    float a[16], b[16], c[16];
    for (size_t i = 0; i < d; ++i) {
      if (metric == Metric::kHamming) {
        a[i] = rng.NextBernoulli(0.5) ? 1.0f : 0.0f;
        b[i] = rng.NextBernoulli(0.5) ? 1.0f : 0.0f;
        c[i] = rng.NextBernoulli(0.5) ? 1.0f : 0.0f;
      } else {
        a[i] = static_cast<float>(rng.NextGaussian());
        b[i] = static_cast<float>(rng.NextGaussian());
        c[i] = static_cast<float>(rng.NextGaussian());
      }
    }
    const float dab = Distance(a, b, d, metric);
    const float dba = Distance(b, a, d, metric);
    const float daa = Distance(a, a, d, metric);
    const float dac = Distance(a, c, d, metric);
    const float dcb = Distance(c, b, d, metric);
    EXPECT_GE(dab, 0.0f);
    // arccos amplifies the float error of dot/(|a||a|) ~ 1-eps.
    EXPECT_NEAR(daa, 0.0f, metric == Metric::kAngular ? 1e-3f : 1e-4f);
    EXPECT_NEAR(dab, dba, 1e-5f);
    if (metric != Metric::kCosine) {
      // Cosine distance is not a metric; all others obey the triangle
      // inequality (needed by the pivot index's pruning).
      // Angular uses arccos whose derivative blows up near dot = 1, so the
      // float slack is looser there.
      const float slack = metric == Metric::kAngular ? 2e-3f : 1e-4f;
      EXPECT_LE(dab, dac + dcb + slack);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricAxiomsTest,
                         ::testing::Values(Metric::kL1, Metric::kL2,
                                           Metric::kCosine, Metric::kAngular,
                                           Metric::kHamming),
                         [](const ::testing::TestParamInfo<Metric>& info) {
                           return MetricName(info.param);
                         });

// Section 3.2: whole-vector distances decompose over query segments.
class SegmentDecompositionTest : public ::testing::TestWithParam<Metric> {};

TEST_P(SegmentDecompositionTest, MergeMatchesDirect) {
  const Metric metric = GetParam();
  Rng rng(7);
  const size_t d = 24;
  const size_t num_segments = 4;
  const size_t seg_len = d / num_segments;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<float> u(d), v(d);
    for (size_t i = 0; i < d; ++i) {
      if (metric == Metric::kHamming) {
        u[i] = rng.NextBernoulli(0.4) ? 1.0f : 0.0f;
        v[i] = rng.NextBernoulli(0.4) ? 1.0f : 0.0f;
      } else {
        u[i] = static_cast<float>(rng.NextGaussian());
        v[i] = static_cast<float>(rng.NextGaussian());
      }
    }
    if (metric == Metric::kCosine || metric == Metric::kAngular) {
      NormalizeRow(u.data(), d);
      NormalizeRow(v.data(), d);
    }
    std::vector<float> seg_vals(num_segments);
    std::vector<size_t> seg_lens(num_segments, seg_len);
    for (size_t s = 0; s < num_segments; ++s) {
      const float* us = u.data() + s * seg_len;
      const float* vs = v.data() + s * seg_len;
      if (metric == Metric::kCosine || metric == Metric::kAngular) {
        // These merge from per-segment partial dot products.
        seg_vals[s] = DotProduct(us, vs, seg_len);
      } else {
        seg_vals[s] = Distance(us, vs, seg_len, metric);
      }
    }
    const float merged = MergeSegmentDistances(metric, seg_vals, seg_lens);
    const float direct = Distance(u.data(), v.data(), d, metric);
    EXPECT_NEAR(merged, direct, 1e-4f) << MetricName(metric);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, SegmentDecompositionTest,
                         ::testing::Values(Metric::kL1, Metric::kL2,
                                           Metric::kCosine, Metric::kAngular,
                                           Metric::kHamming),
                         [](const ::testing::TestParamInfo<Metric>& info) {
                           return MetricName(info.param);
                         });

TEST(MetricTest, HammingMergeWithUnevenSegments) {
  // 6 dims split 2+4; normalized per-segment distances recombine by length.
  const float u[] = {1, 0, 1, 1, 0, 0};
  const float v[] = {0, 0, 1, 0, 0, 1};
  std::vector<float> seg_vals = {
      Distance(u, v, 2, Metric::kHamming),
      Distance(u + 2, v + 2, 4, Metric::kHamming)};
  const float merged =
      MergeSegmentDistances(Metric::kHamming, seg_vals, {2, 4});
  EXPECT_FLOAT_EQ(merged, Distance(u, v, 6, Metric::kHamming));
}

TEST(BitMatrixTest, MatchesFloatHamming) {
  Rng rng(9);
  Matrix m(20, 70);  // spans multiple 64-bit words
  for (size_t i = 0; i < m.size(); ++i) {
    m.data()[i] = rng.NextBernoulli(0.5) ? 1.0f : 0.0f;
  }
  BitMatrix bits = BitMatrix::FromMatrix(m);
  EXPECT_EQ(bits.rows(), 20u);
  EXPECT_EQ(bits.dim(), 70u);
  EXPECT_EQ(bits.words_per_row(), 2u);
  std::vector<float> q(70);
  for (auto& v : q) v = rng.NextBernoulli(0.5) ? 1.0f : 0.0f;
  const auto packed = bits.PackVector(q.data());
  for (size_t r = 0; r < 20; ++r) {
    EXPECT_FLOAT_EQ(bits.HammingNormalized(r, packed.data()),
                    Distance(q.data(), m.Row(r), 70, Metric::kHamming));
  }
}

TEST(NormalizeRowTest, UnitNormAndZeroSafe) {
  float v[] = {3.0f, 4.0f};
  NormalizeRow(v, 2);
  EXPECT_NEAR(v[0], 0.6f, 1e-6f);
  EXPECT_NEAR(v[1], 0.8f, 1e-6f);
  float zero[] = {0.0f, 0.0f};
  NormalizeRow(zero, 2);  // must not produce NaN
  EXPECT_EQ(zero[0], 0.0f);
}

}  // namespace
}  // namespace simcard
