#include "nn/dropout.h"

#include <gtest/gtest.h>

namespace simcard {
namespace nn {
namespace {

TEST(DropoutTest, InferenceIsIdentity) {
  Dropout layer(0.5f, 1);
  layer.SetTraining(false);
  Rng rng(2);
  Matrix x = Matrix::Gaussian(4, 8, 1.0f, &rng);
  EXPECT_TRUE(layer.Forward(x).AllClose(x, 0.0f));
  EXPECT_TRUE(layer.Backward(x).AllClose(x, 0.0f));
}

TEST(DropoutTest, ZeroRateIsIdentityInTraining) {
  Dropout layer(0.0f, 1);
  Rng rng(3);
  Matrix x = Matrix::Gaussian(2, 5, 1.0f, &rng);
  EXPECT_TRUE(layer.Forward(x).AllClose(x, 0.0f));
}

TEST(DropoutTest, TrainingZeroesApproximatelyRateFraction) {
  Dropout layer(0.3f, 4);
  Matrix x = Matrix::Full(100, 100, 1.0f);
  Matrix y = layer.Forward(x);
  size_t zeros = 0;
  for (size_t i = 0; i < y.size(); ++i) zeros += y.data()[i] == 0.0f;
  EXPECT_NEAR(static_cast<double>(zeros) / y.size(), 0.3, 0.02);
}

TEST(DropoutTest, InvertedScalingPreservesExpectation) {
  Dropout layer(0.4f, 5);
  Matrix x = Matrix::Full(200, 200, 1.0f);
  Matrix y = layer.Forward(x);
  EXPECT_NEAR(y.Sum() / y.size(), 1.0, 0.02);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Dropout layer(0.5f, 6);
  Matrix x = Matrix::Full(10, 10, 1.0f);
  Matrix y = layer.Forward(x);
  Matrix g = Matrix::Full(10, 10, 1.0f);
  Matrix gx = layer.Backward(g);
  // Gradient flows exactly where activations survived.
  for (size_t i = 0; i < y.size(); ++i) {
    EXPECT_EQ(gx.data()[i] == 0.0f, y.data()[i] == 0.0f);
  }
}

TEST(DropoutTest, DeterministicPerSeed) {
  Dropout a(0.5f, 7);
  Dropout b(0.5f, 7);
  Matrix x = Matrix::Full(8, 8, 1.0f);
  EXPECT_TRUE(a.Forward(x).AllClose(b.Forward(x), 0.0f));
}

}  // namespace
}  // namespace nn
}  // namespace simcard
