#include "nn/pool1d.h"

#include <gtest/gtest.h>

namespace simcard {
namespace nn {
namespace {

TEST(Pool1DTest, ComputeOutLength) {
  EXPECT_EQ(Pool1D::ComputeOutLength(6, 2, 2), 3u);
  EXPECT_EQ(Pool1D::ComputeOutLength(7, 2, 2), 3u);
  EXPECT_EQ(Pool1D::ComputeOutLength(6, 3, 1), 4u);
  EXPECT_EQ(Pool1D::ComputeOutLength(2, 3, 1), 0u);
  EXPECT_EQ(Pool1D::ComputeOutLength(4, 0, 1), 0u);
}

TEST(Pool1DTest, MaxPool) {
  Pool1D pool(1, 6, 2, 2, PoolOp::kMax);
  Matrix x = Matrix::RowVector({1, 5, 2, 2, -3, -1});
  Matrix y = pool.Forward(x);
  ASSERT_EQ(y.cols(), 3u);
  EXPECT_EQ(y.at(0, 0), 5.0f);
  EXPECT_EQ(y.at(0, 1), 2.0f);
  EXPECT_EQ(y.at(0, 2), -1.0f);
}

TEST(Pool1DTest, AvgPool) {
  Pool1D pool(1, 4, 2, 2, PoolOp::kAvg);
  Matrix x = Matrix::RowVector({1, 3, 5, 7});
  Matrix y = pool.Forward(x);
  EXPECT_EQ(y.at(0, 0), 2.0f);
  EXPECT_EQ(y.at(0, 1), 6.0f);
}

TEST(Pool1DTest, SumPool) {
  Pool1D pool(1, 4, 2, 2, PoolOp::kSum);
  Matrix x = Matrix::RowVector({1, 3, 5, 7});
  Matrix y = pool.Forward(x);
  EXPECT_EQ(y.at(0, 0), 4.0f);
  EXPECT_EQ(y.at(0, 1), 12.0f);
}

TEST(Pool1DTest, OverlappingStride) {
  Pool1D pool(1, 4, 2, 1, PoolOp::kMax);
  Matrix x = Matrix::RowVector({1, 4, 2, 8});
  Matrix y = pool.Forward(x);
  ASSERT_EQ(y.cols(), 3u);
  EXPECT_EQ(y.at(0, 0), 4.0f);
  EXPECT_EQ(y.at(0, 1), 4.0f);
  EXPECT_EQ(y.at(0, 2), 8.0f);
}

TEST(Pool1DTest, ChannelsPooledIndependently) {
  Pool1D pool(2, 4, 2, 2, PoolOp::kMax);
  // channel-major: [c0: 1 2 3 4][c1: 40 30 20 10]
  Matrix x = Matrix::RowVector({1, 2, 3, 4, 40, 30, 20, 10});
  Matrix y = pool.Forward(x);
  ASSERT_EQ(y.cols(), 4u);
  EXPECT_EQ(y.at(0, 0), 2.0f);
  EXPECT_EQ(y.at(0, 1), 4.0f);
  EXPECT_EQ(y.at(0, 2), 40.0f);
  EXPECT_EQ(y.at(0, 3), 20.0f);
}

TEST(Pool1DTest, MaxBackwardRoutesToArgmax) {
  Pool1D pool(1, 4, 2, 2, PoolOp::kMax);
  Matrix x = Matrix::RowVector({1, 5, 7, 2});
  pool.Forward(x);
  Matrix g = Matrix::RowVector({10.0f, 20.0f});
  Matrix gx = pool.Backward(g);
  EXPECT_EQ(gx.at(0, 0), 0.0f);
  EXPECT_EQ(gx.at(0, 1), 10.0f);
  EXPECT_EQ(gx.at(0, 2), 20.0f);
  EXPECT_EQ(gx.at(0, 3), 0.0f);
}

TEST(Pool1DTest, AvgBackwardDistributesEvenly) {
  Pool1D pool(1, 4, 2, 2, PoolOp::kAvg);
  Matrix x = Matrix::RowVector({1, 2, 3, 4});
  pool.Forward(x);
  Matrix g = Matrix::RowVector({2.0f, 4.0f});
  Matrix gx = pool.Backward(g);
  EXPECT_EQ(gx.at(0, 0), 1.0f);
  EXPECT_EQ(gx.at(0, 1), 1.0f);
  EXPECT_EQ(gx.at(0, 2), 2.0f);
  EXPECT_EQ(gx.at(0, 3), 2.0f);
}

TEST(Pool1DTest, PoolOpNames) {
  EXPECT_STREQ(PoolOpName(PoolOp::kMax), "MAX");
  EXPECT_STREQ(PoolOpName(PoolOp::kAvg), "AVG");
  EXPECT_STREQ(PoolOpName(PoolOp::kSum), "SUM");
}

TEST(SumPoolRowsTest, SumsAndKeepsWidth) {
  Matrix rows(3, 2);
  rows.at(0, 0) = 1.0f;
  rows.at(1, 0) = 2.0f;
  rows.at(2, 0) = 3.0f;
  rows.at(0, 1) = -1.0f;
  Matrix pooled = SumPoolRows(rows);
  EXPECT_EQ(pooled.rows(), 1u);
  EXPECT_EQ(pooled.cols(), 2u);
  EXPECT_EQ(pooled.at(0, 0), 6.0f);
  EXPECT_EQ(pooled.at(0, 1), -1.0f);
}

}  // namespace
}  // namespace nn
}  // namespace simcard
