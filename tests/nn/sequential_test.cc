#include "nn/sequential.h"

#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/linear.h"

namespace simcard {
namespace nn {
namespace {

TEST(SequentialTest, ForwardChainsLayers) {
  Rng rng(1);
  Sequential seq;
  auto* l1 = seq.Emplace<Linear>(2, 2, &rng);
  seq.Emplace<Relu>();
  // Identity-ish weights for a predictable result.
  auto params = l1->Parameters();
  params[0]->value().Fill(0.0f);
  params[0]->value().at(0, 0) = 1.0f;
  params[0]->value().at(1, 1) = -1.0f;
  Matrix x = Matrix::RowVector({2.0f, 3.0f});
  Matrix y = seq.Forward(x);
  EXPECT_EQ(y.at(0, 0), 2.0f);
  EXPECT_EQ(y.at(0, 1), 0.0f);  // -3 clipped by ReLU
}

TEST(SequentialTest, EmptySequentialIsIdentity) {
  Sequential seq;
  Matrix x = Matrix::RowVector({1.0f, 2.0f});
  EXPECT_TRUE(seq.Forward(x).AllClose(x, 0.0f));
  EXPECT_TRUE(seq.Backward(x).AllClose(x, 0.0f));
  EXPECT_TRUE(seq.empty());
}

TEST(SequentialTest, ParametersAggregated) {
  Rng rng(2);
  Sequential seq;
  seq.Emplace<Linear>(3, 4, &rng);
  seq.Emplace<Relu>();
  seq.Emplace<Linear>(4, 2, &rng);
  auto params = seq.Parameters();
  EXPECT_EQ(params.size(), 4u);  // two weights + two biases
  EXPECT_EQ(CountScalars(params), 3u * 4 + 4 + 4u * 2 + 2);
}

TEST(SequentialTest, OutputColsChains) {
  Rng rng(3);
  Sequential seq;
  seq.Emplace<Linear>(5, 8, &rng);
  seq.Emplace<Relu>();
  seq.Emplace<Linear>(8, 2, &rng);
  EXPECT_EQ(seq.OutputCols(5), 2u);
}

TEST(SequentialTest, SerializationRoundTrip) {
  Rng rng(4);
  Sequential seq;
  seq.Emplace<Linear>(3, 5, &rng);
  seq.Emplace<Tanh>();
  seq.Emplace<Linear>(5, 1, &rng);
  Matrix x = Matrix::Gaussian(2, 3, 1.0f, &rng);
  Matrix before = seq.Forward(x);

  Serializer out;
  seq.Serialize(&out);

  Rng rng2(55);
  Sequential restored;
  restored.Emplace<Linear>(3, 5, &rng2);
  restored.Emplace<Tanh>();
  restored.Emplace<Linear>(5, 1, &rng2);
  Deserializer in(out.bytes());
  ASSERT_TRUE(restored.Deserialize(&in).ok());
  EXPECT_TRUE(restored.Forward(x).AllClose(before, 0.0f));
}

TEST(SequentialTest, DeserializeRejectsStructureMismatch) {
  Rng rng(5);
  Sequential seq;
  seq.Emplace<Linear>(3, 5, &rng);
  Serializer out;
  seq.Serialize(&out);

  Sequential wrong_count;
  Deserializer in1(out.bytes());
  EXPECT_FALSE(wrong_count.Deserialize(&in1).ok());

  Sequential wrong_type;
  wrong_type.Emplace<Relu>();
  Deserializer in2(out.bytes());
  EXPECT_FALSE(wrong_type.Deserialize(&in2).ok());
}

TEST(SequentialTest, LayerAccessors) {
  Rng rng(6);
  Sequential seq;
  seq.Emplace<Linear>(2, 2, &rng);
  seq.Emplace<Relu>();
  EXPECT_EQ(seq.NumLayers(), 2u);
  EXPECT_EQ(seq.layer(0)->Name(), "Linear");
  EXPECT_EQ(seq.layer(1)->Name(), "Relu");
}

}  // namespace
}  // namespace nn
}  // namespace simcard
