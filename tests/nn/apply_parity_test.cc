// Apply (stateless inference) must agree with Forward for every layer:
// Forward is implemented as "cache, then Apply", so parity is exact by
// construction — these tests pin that invariant against regressions, since
// the concurrent serving layer depends on Apply being both correct and
// side-effect free.
#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/conv1d.h"
#include "nn/dropout.h"
#include "nn/linear.h"
#include "nn/monotone_head.h"
#include "nn/pool1d.h"
#include "nn/positive_linear.h"
#include "nn/sequential.h"

namespace simcard {
namespace nn {
namespace {

Matrix RandomInput(size_t rows, size_t cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  float* d = m.data();
  for (size_t i = 0; i < m.size(); ++i) {
    d[i] = 2.0f * rng.NextFloat() - 1.0f;
  }
  return m;
}

void ExpectSame(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.data()[i], b.data()[i]) << "element " << i;
  }
}

// Apply must equal Forward bit-for-bit (same arithmetic, no stochastic
// path), and const Parameters() must alias the same parameter objects.
void CheckLayer(Layer* layer, const Matrix& input) {
  const Matrix applied = static_cast<const Layer*>(layer)->Apply(input);
  const Matrix forwarded = layer->Forward(input);
  ExpectSame(forwarded, applied);
  // Apply after Forward must not perturb cached training state in a way
  // that changes another Forward.
  const Matrix applied2 = static_cast<const Layer*>(layer)->Apply(input);
  ExpectSame(forwarded, applied2);

  auto mutable_params = layer->Parameters();
  auto const_params = static_cast<const Layer*>(layer)->Parameters();
  ASSERT_EQ(mutable_params.size(), const_params.size());
  for (size_t i = 0; i < mutable_params.size(); ++i) {
    EXPECT_EQ(static_cast<const Parameter*>(mutable_params[i]),
              const_params[i]);
  }
  EXPECT_EQ(CountScalars(mutable_params), CountScalars(const_params));
}

TEST(ApplyParityTest, Linear) {
  Rng rng(7);
  Linear layer(5, 3, &rng);
  CheckLayer(&layer, RandomInput(4, 5, 11));
}

TEST(ApplyParityTest, Activations) {
  const Matrix input = RandomInput(3, 6, 13);
  Relu relu;
  CheckLayer(&relu, input);
  Sigmoid sigmoid;
  CheckLayer(&sigmoid, input);
  Tanh tanh_layer;
  CheckLayer(&tanh_layer, input);
  Softplus softplus;
  CheckLayer(&softplus, input);
}

TEST(ApplyParityTest, Conv1D) {
  Rng rng(17);
  Conv1D layer(/*in_channels=*/2, /*in_length=*/8, /*out_channels=*/3,
               /*kernel=*/4, /*stride=*/4, /*pad=*/0, &rng);
  CheckLayer(&layer, RandomInput(2, 16, 19));
}

TEST(ApplyParityTest, Pool1D) {
  for (PoolOp op : {PoolOp::kMax, PoolOp::kAvg, PoolOp::kSum}) {
    Pool1D layer(/*channels=*/3, /*in_length=*/8, /*kernel=*/2, /*stride=*/2,
                 op);
    CheckLayer(&layer, RandomInput(2, 24, 23));
  }
}

TEST(ApplyParityTest, PartialPositiveLinear) {
  Rng rng(29);
  PartialPositiveLinear layer(6, 4, /*pos_row_begin=*/2, /*pos_row_end=*/5,
                              &rng);
  CheckLayer(&layer, RandomInput(3, 6, 31));
}

TEST(ApplyParityTest, MonotoneHead) {
  Rng rng(37);
  MonotoneHead layer(/*in_dim=*/10, /*tau_begin=*/4, /*tau_end=*/7,
                     /*mono_hidden=*/8, /*free_hidden=*/8, /*out_dim=*/2,
                     &rng);
  CheckLayer(&layer, RandomInput(3, 10, 41));
}

TEST(ApplyParityTest, DropoutApplyIsInferenceIdentity) {
  Dropout layer(0.5f, /*seed=*/43);
  const Matrix input = RandomInput(4, 5, 47);
  // Apply is the inference-mode identity regardless of training mode.
  ExpectSame(input, static_cast<const Layer*>(&layer)->Apply(input));
  // In inference mode Forward matches Apply exactly.
  layer.SetTraining(false);
  ExpectSame(layer.Forward(input),
             static_cast<const Layer*>(&layer)->Apply(input));
}

TEST(ApplyParityTest, SequentialTower) {
  Rng rng(53);
  Sequential tower;
  tower.Emplace<Linear>(6, 8, &rng);
  tower.Emplace<Relu>();
  auto* dropout = tower.Emplace<Dropout>(0.3f, /*seed=*/59);
  tower.Emplace<Linear>(8, 4, &rng);
  tower.Emplace<Tanh>();
  dropout->SetTraining(false);
  CheckLayer(&tower, RandomInput(5, 6, 61));
}

}  // namespace
}  // namespace nn
}  // namespace simcard
