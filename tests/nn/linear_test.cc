#include "nn/linear.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace simcard {
namespace nn {
namespace {

TEST(LinearTest, ForwardComputesAffine) {
  Rng rng(1);
  Linear layer(2, 2, &rng);
  // Overwrite weights with known values through the parameter interface.
  auto params = layer.Parameters();
  ASSERT_EQ(params.size(), 2u);
  Matrix& w = params[0]->value();
  w.at(0, 0) = 1.0f;
  w.at(0, 1) = 2.0f;
  w.at(1, 0) = 3.0f;
  w.at(1, 1) = 4.0f;
  params[1]->value().at(0, 0) = 10.0f;
  params[1]->value().at(0, 1) = 20.0f;

  Matrix x = Matrix::RowVector({1.0f, 1.0f});
  Matrix y = layer.Forward(x);
  EXPECT_EQ(y.at(0, 0), 14.0f);  // 1+3+10
  EXPECT_EQ(y.at(0, 1), 26.0f);  // 2+4+20
}

TEST(LinearTest, OutputShape) {
  Rng rng(2);
  Linear layer(5, 3, &rng);
  Matrix x = Matrix::Gaussian(7, 5, 1.0f, &rng);
  Matrix y = layer.Forward(x);
  EXPECT_EQ(y.rows(), 7u);
  EXPECT_EQ(y.cols(), 3u);
  EXPECT_EQ(layer.OutputCols(5), 3u);
}

TEST(LinearTest, BackwardAccumulatesGrads) {
  Rng rng(3);
  Linear layer(3, 2, &rng);
  Matrix x = Matrix::Gaussian(4, 3, 1.0f, &rng);
  layer.Forward(x);
  Matrix g = Matrix::Full(4, 2, 1.0f);
  layer.Backward(g);
  // Bias gradient = column sums of g = batch size.
  auto params = layer.Parameters();
  EXPECT_EQ(params[1]->grad().at(0, 0), 4.0f);
  // Backward called twice accumulates.
  layer.Backward(g);
  EXPECT_EQ(params[1]->grad().at(0, 1), 8.0f);
}

TEST(LinearTest, BackwardInputGradUsesWeights) {
  Rng rng(4);
  Linear layer(2, 1, &rng);
  auto params = layer.Parameters();
  params[0]->value().at(0, 0) = 2.0f;
  params[0]->value().at(1, 0) = -3.0f;
  Matrix x = Matrix::RowVector({1.0f, 1.0f});
  layer.Forward(x);
  Matrix g = Matrix::Full(1, 1, 1.0f);
  Matrix gx = layer.Backward(g);
  EXPECT_EQ(gx.at(0, 0), 2.0f);
  EXPECT_EQ(gx.at(0, 1), -3.0f);
}

TEST(LinearTest, SetBiasOverwrites) {
  Rng rng(5);
  Linear layer(2, 3, &rng);
  layer.SetBias(7.5f);
  Matrix y = layer.Forward(Matrix::Zeros(1, 2));
  for (size_t c = 0; c < 3; ++c) EXPECT_EQ(y.at(0, c), 7.5f);
}

TEST(LinearTest, SerializationRoundTrip) {
  Rng rng(6);
  Linear layer(4, 3, &rng);
  Matrix x = Matrix::Gaussian(2, 4, 1.0f, &rng);
  Matrix before = layer.Forward(x);

  Serializer out;
  layer.Serialize(&out);

  Rng rng2(999);
  Linear restored(4, 3, &rng2);
  Deserializer in(out.bytes());
  ASSERT_TRUE(restored.Deserialize(&in).ok());
  EXPECT_TRUE(restored.Forward(x).AllClose(before, 0.0f));
}

}  // namespace
}  // namespace nn
}  // namespace simcard
