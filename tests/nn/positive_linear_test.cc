#include "nn/positive_linear.h"

#include <gtest/gtest.h>

#include "nn/optimizer.h"
#include "tensor/ops.h"

namespace simcard {
namespace nn {
namespace {

TEST(PositiveLinearTest, EffectiveWeightsAreStrictlyPositive) {
  Rng rng(1);
  PositiveLinear layer(6, 4, &rng);
  Matrix w = layer.EffectiveWeight();
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_GT(w.data()[i], 0.0f);
  }
}

TEST(PositiveLinearTest, PositivityHoldsAfterTraining) {
  // Gradient steps on the raw weights must never break positivity.
  Rng rng(2);
  PositiveLinear layer(3, 2, &rng);
  Sgd opt(layer.Parameters(), /*lr=*/0.5f, /*momentum=*/0.0f);
  for (int step = 0; step < 50; ++step) {
    Matrix x = Matrix::Gaussian(4, 3, 1.0f, &rng);
    layer.Forward(x);
    // Push outputs strongly negative, which drives weights downward.
    Matrix g = Matrix::Full(4, 2, 1.0f);
    opt.ZeroGrad();
    layer.Backward(g);
    opt.Step();
  }
  Matrix w = layer.EffectiveWeight();
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_GT(w.data()[i], 0.0f);
  }
}

TEST(PartialPositiveLinearTest, OnlySelectedRowsConstrained) {
  Rng rng(3);
  // Rows [1,3) constrained positive; rows 0 and 3 free.
  PartialPositiveLinear layer(4, 8, 1, 3, &rng);
  Matrix w = layer.EffectiveWeight();
  bool saw_negative_free = false;
  for (size_t c = 0; c < 8; ++c) {
    EXPECT_GT(w.at(1, c), 0.0f);
    EXPECT_GT(w.at(2, c), 0.0f);
    if (w.at(0, c) < 0.0f || w.at(3, c) < 0.0f) saw_negative_free = true;
  }
  EXPECT_TRUE(saw_negative_free)
      << "free rows should carry some negative Xavier weights";
}

TEST(PartialPositiveLinearTest, MonotoneInConstrainedInputs) {
  Rng rng(4);
  PartialPositiveLinear layer(3, 5, 0, 3, &rng);
  Matrix lo = Matrix::RowVector({0.1f, 0.2f, 0.3f});
  Matrix hi = Matrix::RowVector({0.2f, 0.5f, 0.9f});
  Matrix ylo = layer.Forward(lo);
  Matrix yhi = layer.Forward(hi);
  for (size_t c = 0; c < 5; ++c) {
    EXPECT_GE(yhi.at(0, c), ylo.at(0, c));
  }
}

TEST(PartialPositiveLinearTest, ForwardMatchesEffectiveWeight) {
  Rng rng(5);
  PartialPositiveLinear layer(4, 3, 1, 2, &rng);
  Matrix x = Matrix::Gaussian(2, 4, 1.0f, &rng);
  Matrix expected = MatMul(x, layer.EffectiveWeight());
  Matrix y = layer.Forward(x);  // bias starts at zero
  EXPECT_TRUE(y.AllClose(expected, 1e-5f));
}

TEST(PartialPositiveLinearTest, InitBiasUniformInRange) {
  Rng rng(6);
  PartialPositiveLinear layer(2, 64, 0, 2, &rng);
  layer.InitBiasUniform(-2.0f, 2.0f, &rng);
  Matrix y0 = layer.Forward(Matrix::Zeros(1, 2));
  float lo = y0.at(0, 0);
  float hi = y0.at(0, 0);
  for (size_t c = 0; c < 64; ++c) {
    EXPECT_GE(y0.at(0, c), -2.0f);
    EXPECT_LE(y0.at(0, c), 2.0f);
    lo = std::min(lo, y0.at(0, c));
    hi = std::max(hi, y0.at(0, c));
  }
  EXPECT_LT(lo, -0.5f);  // biases actually spread out
  EXPECT_GT(hi, 0.5f);
}

TEST(PartialPositiveLinearTest, SerializationRoundTrip) {
  Rng rng(7);
  PartialPositiveLinear layer(5, 4, 2, 4, &rng);
  Matrix x = Matrix::Gaussian(3, 5, 1.0f, &rng);
  Matrix before = layer.Forward(x);
  Serializer out;
  layer.Serialize(&out);
  Rng rng2(100);
  PartialPositiveLinear restored(5, 4, 2, 4, &rng2);
  Deserializer in(out.bytes());
  ASSERT_TRUE(restored.Deserialize(&in).ok());
  EXPECT_TRUE(restored.Forward(x).AllClose(before, 0.0f));
}

}  // namespace
}  // namespace nn
}  // namespace simcard
