#include "nn/monotone_head.h"

#include <gtest/gtest.h>

namespace simcard {
namespace nn {
namespace {

TEST(MonotoneHeadTest, OutputShape) {
  Rng rng(1);
  MonotoneHead head(10, 3, 6, 4, 8, 2, &rng);
  Matrix x = Matrix::Gaussian(5, 10, 1.0f, &rng);
  Matrix y = head.Forward(x);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 2u);
  EXPECT_EQ(head.OutputCols(10), 2u);
}

TEST(MonotoneHeadTest, MonotoneInEveryTauCoordinate) {
  Rng rng(2);
  MonotoneHead head(8, 2, 5, 6, 6, 3, &rng);
  Rng data_rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix base = Matrix::Gaussian(1, 8, 1.0f, &data_rng);
    for (size_t tau_coord = 2; tau_coord < 5; ++tau_coord) {
      Matrix lo = base;
      Matrix hi = base;
      hi.at(0, tau_coord) += 0.5f + data_rng.NextFloat();
      Matrix ylo = head.Forward(lo);
      Matrix yhi = head.Forward(hi);
      for (size_t c = 0; c < 3; ++c) {
        EXPECT_GE(yhi.at(0, c), ylo.at(0, c))
            << "trial " << trial << " coord " << tau_coord << " out " << c;
      }
    }
  }
}

TEST(MonotoneHeadTest, MonotoneAfterTraining) {
  // Positivity is structural, so monotonicity must survive arbitrary
  // gradient updates. Apply noisy gradient steps then re-check.
  Rng rng(4);
  MonotoneHead head(6, 0, 2, 4, 4, 1, &rng);
  auto params = head.Parameters();
  for (int step = 0; step < 50; ++step) {
    Matrix x = Matrix::Gaussian(4, 6, 1.0f, &rng);
    head.Forward(x);
    Matrix g(4, 1);
    for (size_t i = 0; i < g.size(); ++i) {
      g.data()[i] = static_cast<float>(rng.NextGaussian());
    }
    for (auto* p : params) p->ZeroGrad();
    head.Backward(g);
    for (auto* p : params) {
      for (size_t i = 0; i < p->value().size(); ++i) {
        p->value().data()[i] -= 0.05f * p->grad().data()[i];
      }
    }
  }
  Rng data_rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    Matrix base = Matrix::Gaussian(1, 6, 1.0f, &data_rng);
    Matrix hi = base;
    hi.at(0, 0) += 1.0f;
    hi.at(0, 1) += 0.5f;
    EXPECT_GE(head.Forward(hi).at(0, 0), head.Forward(base).at(0, 0));
  }
}

TEST(MonotoneHeadTest, FreeBranchUnconstrained) {
  // Output must be able to *decrease* in a non-tau coordinate for some
  // weight configuration; verify the initialized head shows non-monotone
  // behavior in at least one free coordinate over random probes.
  Rng rng(6);
  MonotoneHead head(6, 4, 6, 4, 8, 1, &rng);
  Rng data_rng(7);
  bool saw_decrease = false;
  for (int trial = 0; trial < 50 && !saw_decrease; ++trial) {
    Matrix base = Matrix::Gaussian(1, 6, 1.0f, &data_rng);
    for (size_t coord = 0; coord < 4; ++coord) {
      Matrix hi = base;
      hi.at(0, coord) += 1.0f;
      if (head.Forward(hi).at(0, 0) < head.Forward(base).at(0, 0) - 1e-6f) {
        saw_decrease = true;
        break;
      }
    }
  }
  EXPECT_TRUE(saw_decrease);
}

TEST(MonotoneHeadTest, SetOutputBiasShiftsOutput) {
  Rng rng(8);
  MonotoneHead head(4, 1, 2, 4, 4, 1, &rng);
  Matrix x = Matrix::Gaussian(1, 4, 1.0f, &rng);
  const float before = head.Forward(x).at(0, 0);
  head.SetOutputBias(5.0f);
  const float after = head.Forward(x).at(0, 0);
  // Bias replaced (free2 bias starts at 0), so the shift is exactly +5.
  EXPECT_NEAR(after - before, 5.0f, 1e-5f);
}

TEST(MonotoneHeadTest, DegenerateTauSliceWorks) {
  // Empty tau slice: the head degrades to a plain two-branch MLP.
  Rng rng(9);
  MonotoneHead head(4, 2, 2, 4, 4, 1, &rng);
  Matrix x = Matrix::Gaussian(3, 4, 1.0f, &rng);
  Matrix y = head.Forward(x);
  EXPECT_EQ(y.rows(), 3u);
}

TEST(MonotoneHeadTest, SerializationRoundTrip) {
  Rng rng(10);
  MonotoneHead head(6, 2, 4, 4, 6, 2, &rng);
  Matrix x = Matrix::Gaussian(2, 6, 1.0f, &rng);
  Matrix before = head.Forward(x);
  Serializer out;
  head.Serialize(&out);
  Rng rng2(77);
  MonotoneHead restored(6, 2, 4, 4, 6, 2, &rng2);
  Deserializer in(out.bytes());
  ASSERT_TRUE(restored.Deserialize(&in).ok());
  EXPECT_TRUE(restored.Forward(x).AllClose(before, 0.0f));
}

}  // namespace
}  // namespace nn
}  // namespace simcard
