#include "nn/conv1d.h"

#include <gtest/gtest.h>

namespace simcard {
namespace nn {
namespace {

TEST(Conv1DTest, ComputeOutLength) {
  EXPECT_EQ(Conv1D::ComputeOutLength(10, 3, 1, 0), 8u);
  EXPECT_EQ(Conv1D::ComputeOutLength(10, 3, 2, 0), 4u);
  EXPECT_EQ(Conv1D::ComputeOutLength(10, 3, 1, 1), 10u);
  EXPECT_EQ(Conv1D::ComputeOutLength(8, 4, 4, 0), 2u);
  EXPECT_EQ(Conv1D::ComputeOutLength(3, 5, 1, 0), 0u);  // infeasible
  EXPECT_EQ(Conv1D::ComputeOutLength(3, 5, 1, 1), 1u);  // feasible w/ pad
  EXPECT_EQ(Conv1D::ComputeOutLength(4, 0, 1, 0), 0u);
  EXPECT_EQ(Conv1D::ComputeOutLength(4, 2, 0, 0), 0u);
}

// Sets the conv filter to known values via the parameter interface.
void SetFilter(Conv1D* conv, const std::vector<float>& weights, float bias) {
  auto params = conv->Parameters();
  Matrix& w = params[0]->value();
  ASSERT_EQ(w.size(), weights.size());
  for (size_t i = 0; i < weights.size(); ++i) w.data()[i] = weights[i];
  params[1]->value().Fill(bias);
}

TEST(Conv1DTest, KnownConvolution) {
  Rng rng(1);
  // 1 channel, length 4, 1 filter of kernel 2, stride 1, no pad.
  Conv1D conv(1, 4, 1, 2, 1, 0, &rng);
  SetFilter(&conv, {1.0f, -1.0f}, 0.5f);
  Matrix x = Matrix::RowVector({1.0f, 3.0f, 2.0f, 5.0f});
  Matrix y = conv.Forward(x);
  ASSERT_EQ(y.cols(), 3u);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1.0f - 3.0f + 0.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 3.0f - 2.0f + 0.5f);
  EXPECT_FLOAT_EQ(y.at(0, 2), 2.0f - 5.0f + 0.5f);
}

TEST(Conv1DTest, SegmentLayerSharesWeightsAcrossSegments) {
  // kernel == stride == segment width: each output position applies the
  // same filter to one segment (the paper's shared f()).
  Rng rng(2);
  Conv1D conv(1, 6, 1, 3, 3, 0, &rng);
  SetFilter(&conv, {1.0f, 2.0f, 3.0f}, 0.0f);
  Matrix x = Matrix::RowVector({1, 0, 0, 0, 1, 0});
  Matrix y = conv.Forward(x);
  ASSERT_EQ(y.cols(), 2u);
  EXPECT_FLOAT_EQ(y.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 2.0f);
}

TEST(Conv1DTest, PaddingContributesZeros) {
  Rng rng(3);
  Conv1D conv(1, 2, 1, 3, 1, 1, &rng);
  SetFilter(&conv, {1.0f, 1.0f, 1.0f}, 0.0f);
  Matrix x = Matrix::RowVector({4.0f, 6.0f});
  Matrix y = conv.Forward(x);
  ASSERT_EQ(y.cols(), 2u);
  EXPECT_FLOAT_EQ(y.at(0, 0), 10.0f);  // 0+4+6
  EXPECT_FLOAT_EQ(y.at(0, 1), 10.0f);  // 4+6+0
}

TEST(Conv1DTest, MultiChannelSumsAcrossInputChannels) {
  Rng rng(4);
  Conv1D conv(2, 3, 1, 1, 1, 0, &rng);
  // Filter: channel0 weight 1, channel1 weight 10.
  SetFilter(&conv, {1.0f, 10.0f}, 0.0f);
  // Row layout is channel-major: [c0: 1 2 3][c1: 4 5 6].
  Matrix x = Matrix::RowVector({1, 2, 3, 4, 5, 6});
  Matrix y = conv.Forward(x);
  ASSERT_EQ(y.cols(), 3u);
  EXPECT_FLOAT_EQ(y.at(0, 0), 41.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 52.0f);
  EXPECT_FLOAT_EQ(y.at(0, 2), 63.0f);
}

TEST(Conv1DTest, OutputLayoutIsChannelMajor) {
  Rng rng(5);
  Conv1D conv(1, 4, 2, 2, 2, 0, &rng);
  auto params = conv.Parameters();
  // Filter 0 = [1,0] (picks first element), filter 1 = [0,1] (second).
  Matrix& w = params[0]->value();
  w.at(0, 0) = 1.0f;
  w.at(0, 1) = 0.0f;
  w.at(1, 0) = 0.0f;
  w.at(1, 1) = 1.0f;
  params[1]->value().Fill(0.0f);
  Matrix x = Matrix::RowVector({7, 8, 9, 10});
  Matrix y = conv.Forward(x);
  ASSERT_EQ(y.cols(), 4u);  // 2 channels x out_len 2
  EXPECT_FLOAT_EQ(y.at(0, 0), 7.0f);   // ch0 pos0
  EXPECT_FLOAT_EQ(y.at(0, 1), 9.0f);   // ch0 pos1
  EXPECT_FLOAT_EQ(y.at(0, 2), 8.0f);   // ch1 pos0
  EXPECT_FLOAT_EQ(y.at(0, 3), 10.0f);  // ch1 pos1
}

TEST(Conv1DTest, BatchRowsIndependent) {
  Rng rng(6);
  Conv1D conv(1, 5, 2, 3, 1, 1, &rng);
  Matrix x = Matrix::Gaussian(3, 5, 1.0f, &rng);
  Matrix all = conv.Forward(x);
  for (size_t r = 0; r < 3; ++r) {
    Matrix single = conv.Forward(x.SliceRows(r, r + 1));
    for (size_t c = 0; c < all.cols(); ++c) {
      EXPECT_FLOAT_EQ(single.at(0, c), all.at(r, c));
    }
  }
}

TEST(Conv1DTest, SerializationRoundTrip) {
  Rng rng(7);
  Conv1D conv(2, 6, 3, 2, 2, 0, &rng);
  Matrix x = Matrix::Gaussian(2, 12, 1.0f, &rng);
  Matrix before = conv.Forward(x);
  Serializer out;
  conv.Serialize(&out);
  Rng rng2(1000);
  Conv1D restored(2, 6, 3, 2, 2, 0, &rng2);
  Deserializer in(out.bytes());
  ASSERT_TRUE(restored.Deserialize(&in).ok());
  EXPECT_TRUE(restored.Forward(x).AllClose(before, 0.0f));
}

}  // namespace
}  // namespace nn
}  // namespace simcard
