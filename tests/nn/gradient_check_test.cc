// Numerical-gradient verification for every layer type. This is the core
// safety net of the hand-written backprop framework: each TEST_P instance
// checks one layer geometry against central finite differences.
#include "nn/gradient_check.h"

#include <gtest/gtest.h>

#include <memory>

#include "nn/activations.h"
#include "nn/conv1d.h"
#include "nn/linear.h"
#include "nn/monotone_head.h"
#include "nn/pool1d.h"
#include "nn/positive_linear.h"
#include "nn/sequential.h"

namespace simcard {
namespace nn {
namespace {

constexpr double kTol = 5e-3;

struct LayerCase {
  std::string name;
  size_t in_cols;
  std::function<std::unique_ptr<Layer>(Rng*)> make;
  // Deep ReLU/pool stacks accumulate float32 kink-crossing noise in the
  // finite differences; such cases get a looser tolerance.
  double tol = kTol;
};

class LayerGradientTest : public ::testing::TestWithParam<LayerCase> {};

TEST_P(LayerGradientTest, AnalyticMatchesNumeric) {
  const LayerCase& c = GetParam();
  Rng rng(1234);
  auto layer = c.make(&rng);
  const size_t batch = 3;
  Matrix input = Matrix::Gaussian(batch, c.in_cols, 1.0f, &rng);
  const size_t out_cols = layer->OutputCols(c.in_cols);
  Matrix target = Matrix::Gaussian(batch, out_cols, 1.0f, &rng);
  auto report = CheckLayerGradients(layer.get(), input, target, &rng);
  EXPECT_LT(report.max_param_error, c.tol) << c.name;
  EXPECT_LT(report.max_input_error, c.tol) << c.name;
  EXPECT_GT(report.checked_inputs, 0u);
}

std::vector<LayerCase> AllLayerCases() {
  std::vector<LayerCase> cases;
  cases.push_back({"Linear", 6, [](Rng* rng) -> std::unique_ptr<Layer> {
                     return std::make_unique<Linear>(6, 4, rng);
                   }});
  cases.push_back({"LinearWide", 3, [](Rng* rng) -> std::unique_ptr<Layer> {
                     return std::make_unique<Linear>(3, 10, rng);
                   }});
  cases.push_back({"PositiveLinear", 5,
                   [](Rng* rng) -> std::unique_ptr<Layer> {
                     return std::make_unique<PositiveLinear>(5, 4, rng);
                   }});
  cases.push_back({"PartialPositiveLinear", 8,
                   [](Rng* rng) -> std::unique_ptr<Layer> {
                     return std::make_unique<PartialPositiveLinear>(8, 5, 2, 5,
                                                                    rng);
                   }});
  cases.push_back({"Relu", 7, [](Rng*) -> std::unique_ptr<Layer> {
                     return std::make_unique<Relu>();
                   }});
  cases.push_back({"Sigmoid", 7, [](Rng*) -> std::unique_ptr<Layer> {
                     return std::make_unique<Sigmoid>();
                   }});
  cases.push_back({"Tanh", 7, [](Rng*) -> std::unique_ptr<Layer> {
                     return std::make_unique<Tanh>();
                   }});
  cases.push_back({"Softplus", 7, [](Rng*) -> std::unique_ptr<Layer> {
                     return std::make_unique<Softplus>();
                   }});
  cases.push_back({"Conv1DBasic", 12, [](Rng* rng) -> std::unique_ptr<Layer> {
                     return std::make_unique<Conv1D>(1, 12, 3, 4, 4, 0, rng);
                   }});
  cases.push_back({"Conv1DStridePad", 16,
                   [](Rng* rng) -> std::unique_ptr<Layer> {
                     return std::make_unique<Conv1D>(2, 8, 3, 3, 2, 1, rng);
                   }});
  cases.push_back({"Conv1DMultiChannel", 24,
                   [](Rng* rng) -> std::unique_ptr<Layer> {
                     return std::make_unique<Conv1D>(3, 8, 4, 2, 1, 0, rng);
                   }});
  cases.push_back({"Pool1DMax", 12, [](Rng*) -> std::unique_ptr<Layer> {
                     return std::make_unique<Pool1D>(2, 6, 2, 2, PoolOp::kMax);
                   }});
  cases.push_back({"Pool1DAvg", 12, [](Rng*) -> std::unique_ptr<Layer> {
                     return std::make_unique<Pool1D>(2, 6, 3, 1, PoolOp::kAvg);
                   }});
  cases.push_back({"Pool1DSum", 12, [](Rng*) -> std::unique_ptr<Layer> {
                     return std::make_unique<Pool1D>(2, 6, 2, 2, PoolOp::kSum);
                   }});
  cases.push_back({"MonotoneHead", 10,
                   [](Rng* rng) -> std::unique_ptr<Layer> {
                     return std::make_unique<MonotoneHead>(10, 4, 7, 6, 8, 3,
                                                           rng);
                   }});
  cases.push_back({"MonotoneHeadScalarOut", 6,
                   [](Rng* rng) -> std::unique_ptr<Layer> {
                     return std::make_unique<MonotoneHead>(6, 0, 2, 4, 5, 1,
                                                           rng);
                   }});
  cases.push_back(
      {"SequentialMlp", 6, [](Rng* rng) -> std::unique_ptr<Layer> {
         auto seq = std::make_unique<Sequential>();
         seq->Emplace<Linear>(6, 8, rng);
         seq->Emplace<Relu>();
         seq->Emplace<Linear>(8, 4, rng);
         seq->Emplace<Tanh>();
         return seq;
       }});
  cases.push_back(
      {"SequentialConvStack", 16, [](Rng* rng) -> std::unique_ptr<Layer> {
         auto seq = std::make_unique<Sequential>();
         seq->Emplace<Conv1D>(1, 16, 4, 4, 4, 0, rng);
         seq->Emplace<Relu>();
         seq->Emplace<Conv1D>(4, 4, 2, 2, 1, 0, rng);
         seq->Emplace<Relu>();
         seq->Emplace<Pool1D>(2, 3, 2, 1, PoolOp::kAvg);
         seq->Emplace<Linear>(4, 2, rng);
         return seq;
       }, /*tol=*/2e-2});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllLayers, LayerGradientTest,
                         ::testing::ValuesIn(AllLayerCases()),
                         [](const ::testing::TestParamInfo<LayerCase>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace nn
}  // namespace simcard
