#include "nn/losses.h"

#include <gtest/gtest.h>

#include <cmath>

namespace simcard {
namespace nn {
namespace {

// Central-difference check of an analytic gradient of a loss w.r.t. pred.
template <typename LossFn>
void CheckLossGrad(const LossFn& compute, const Matrix& pred, double tol) {
  Matrix grad;
  compute(pred, &grad);
  const double h = 1e-3;
  for (size_t i = 0; i < pred.size(); ++i) {
    Matrix p = pred;
    p.data()[i] += static_cast<float>(h);
    const double lp = compute(p, nullptr);
    p.data()[i] -= static_cast<float>(2 * h);
    const double lm = compute(p, nullptr);
    const double numeric = (lp - lm) / (2 * h);
    EXPECT_NEAR(grad.data()[i], numeric, tol) << "coord " << i;
  }
}

TEST(HybridCardLossTest, ZeroErrorAtPerfectPrediction) {
  HybridCardLoss loss(0.5f);
  Matrix pred(1, 1);
  pred.at(0, 0) = std::log(100.0f);
  Matrix target(1, 1);
  target.at(0, 0) = 100.0f;
  const double value = loss.Compute(pred, target, nullptr);
  // MAPE term 0; Q-error term lambda * 1.
  EXPECT_NEAR(value, 0.5, 1e-3);
}

TEST(HybridCardLossTest, PenalizesOverAndUnderestimates) {
  HybridCardLoss loss(0.2f);
  Matrix target(1, 1);
  target.at(0, 0) = 100.0f;
  Matrix exact(1, 1);
  exact.at(0, 0) = std::log(100.0f);
  Matrix over(1, 1);
  over.at(0, 0) = std::log(200.0f);
  Matrix under(1, 1);
  under.at(0, 0) = std::log(50.0f);
  const double l_exact = loss.Compute(exact, target, nullptr);
  EXPECT_GT(loss.Compute(over, target, nullptr), l_exact);
  EXPECT_GT(loss.Compute(under, target, nullptr), l_exact);
}

TEST(HybridCardLossTest, ZeroCardinalityUsesFloor) {
  HybridCardLoss loss(0.2f);
  Matrix pred(1, 1);
  pred.at(0, 0) = 0.0f;  // estimate e^0 = 1
  Matrix target(1, 1);
  target.at(0, 0) = 0.0f;
  const double value = loss.Compute(pred, target, nullptr);
  EXPECT_TRUE(std::isfinite(value));
  EXPECT_GT(value, 0.0);
}

TEST(HybridCardLossTest, GradientMatchesNumeric) {
  HybridCardLoss loss(0.3f);
  Matrix target(4, 1);
  target.at(0, 0) = 10.0f;
  target.at(1, 0) = 100.0f;
  target.at(2, 0) = 3.0f;
  target.at(3, 0) = 1000.0f;
  Matrix pred(4, 1);
  pred.at(0, 0) = std::log(15.0f);   // overestimate
  pred.at(1, 0) = std::log(40.0f);   // underestimate
  // Avoid landing exactly on the |e^u - y| kink, where one-sided
  // subgradients legitimately disagree with central differences.
  pred.at(2, 0) = std::log(3.4f);
  pred.at(3, 0) = std::log(900.0f);  // close
  CheckLossGrad(
      [&](const Matrix& p, Matrix* g) { return loss.Compute(p, target, g); },
      pred, 5e-3);
}

TEST(HybridCardLossTest, GradientIsClipped) {
  HybridCardLoss loss(0.2f, /*grad_clip=*/5.0f);
  Matrix pred(1, 1);
  pred.at(0, 0) = 20.0f;  // e^20 vastly over target
  Matrix target(1, 1);
  target.at(0, 0) = 1.0f;
  Matrix grad;
  loss.Compute(pred, target, &grad);
  EXPECT_LE(std::fabs(grad.at(0, 0)), 5.0f);
}

TEST(HybridCardLossTest, LambdaWeightsQError) {
  Matrix pred(1, 1);
  pred.at(0, 0) = std::log(200.0f);
  Matrix target(1, 1);
  target.at(0, 0) = 100.0f;
  HybridCardLoss small(0.0f);
  HybridCardLoss big(1.0f);
  // With q-error = 2 the difference should be exactly lambda * 2.
  EXPECT_NEAR(big.Compute(pred, target, nullptr) -
                  small.Compute(pred, target, nullptr),
              2.0, 1e-2);
}

TEST(WeightedBceLossTest, PerfectPredictionsHaveLowLoss) {
  WeightedBceLoss loss;
  Matrix logits(1, 2);
  logits.at(0, 0) = 20.0f;
  logits.at(0, 1) = -20.0f;
  Matrix labels(1, 2);
  labels.at(0, 0) = 1.0f;
  labels.at(0, 1) = 0.0f;
  Matrix penalty(1, 2);
  EXPECT_LT(loss.Compute(logits, labels, penalty, nullptr), 1e-6);
}

TEST(WeightedBceLossTest, WrongPredictionsHaveHighLoss) {
  WeightedBceLoss loss;
  Matrix logits(1, 1);
  logits.at(0, 0) = -10.0f;
  Matrix labels(1, 1);
  labels.at(0, 0) = 1.0f;
  Matrix penalty(1, 1);
  EXPECT_GT(loss.Compute(logits, labels, penalty, nullptr), 5.0);
}

TEST(WeightedBceLossTest, PenaltyAmplifiesPositiveTerm) {
  WeightedBceLoss loss;
  Matrix logits(1, 1);
  logits.at(0, 0) = 0.0f;
  Matrix labels(1, 1);
  labels.at(0, 0) = 1.0f;
  Matrix no_penalty(1, 1);
  Matrix full_penalty(1, 1);
  full_penalty.at(0, 0) = 1.0f;
  const double base = loss.Compute(logits, labels, no_penalty, nullptr);
  const double weighted = loss.Compute(logits, labels, full_penalty, nullptr);
  EXPECT_NEAR(weighted, 2.0 * base, 1e-6);
}

TEST(WeightedBceLossTest, PenaltyDoesNotAffectNegatives) {
  WeightedBceLoss loss;
  Matrix logits(1, 1);
  logits.at(0, 0) = 1.0f;
  Matrix labels(1, 1);  // negative label
  Matrix no_penalty(1, 1);
  Matrix full_penalty(1, 1);
  full_penalty.at(0, 0) = 1.0f;
  EXPECT_EQ(loss.Compute(logits, labels, no_penalty, nullptr),
            loss.Compute(logits, labels, full_penalty, nullptr));
}

TEST(WeightedBceLossTest, GradientMatchesNumeric) {
  WeightedBceLoss loss;
  Matrix logits(2, 3);
  Matrix labels(2, 3);
  Matrix penalty(2, 3);
  Rng rng(11);
  for (size_t i = 0; i < logits.size(); ++i) {
    logits.data()[i] = static_cast<float>(rng.NextGaussian());
    labels.data()[i] = rng.NextBernoulli(0.5) ? 1.0f : 0.0f;
    penalty.data()[i] = rng.NextFloat();
  }
  CheckLossGrad(
      [&](const Matrix& p, Matrix* g) {
        return loss.Compute(p, labels, penalty, g);
      },
      logits, 5e-3);
}

TEST(WeightedBceLossTest, StableAtExtremeLogits) {
  WeightedBceLoss loss;
  Matrix logits(1, 2);
  logits.at(0, 0) = 500.0f;
  logits.at(0, 1) = -500.0f;
  Matrix labels(1, 2);
  labels.at(0, 0) = 0.0f;
  labels.at(0, 1) = 1.0f;
  Matrix penalty(1, 2);
  Matrix grad;
  const double value = loss.Compute(logits, labels, penalty, &grad);
  EXPECT_TRUE(std::isfinite(value));
  EXPECT_TRUE(std::isfinite(grad.at(0, 0)));
  EXPECT_TRUE(std::isfinite(grad.at(0, 1)));
}

TEST(MseLossTest, ValueAndGradient) {
  MseLoss loss;
  Matrix pred = Matrix::RowVector({2.0f, -1.0f});
  Matrix target = Matrix::RowVector({0.0f, -1.0f});
  Matrix grad;
  const double value = loss.Compute(pred, target, &grad);
  EXPECT_NEAR(value, 2.0, 1e-6);  // (4+0)/2
  EXPECT_NEAR(grad.at(0, 0), 2.0f, 1e-6f);
  EXPECT_NEAR(grad.at(0, 1), 0.0f, 1e-6f);
}

TEST(MinMaxNormalizeRowsTest, NormalizesEachRow) {
  Matrix card(2, 3);
  card.at(0, 0) = 10.0f;
  card.at(0, 1) = 20.0f;
  card.at(0, 2) = 30.0f;
  card.at(1, 0) = 5.0f;
  card.at(1, 1) = 5.0f;
  card.at(1, 2) = 5.0f;  // constant row
  Matrix eps = MinMaxNormalizeRows(card);
  EXPECT_EQ(eps.at(0, 0), 0.0f);
  EXPECT_EQ(eps.at(0, 1), 0.5f);
  EXPECT_EQ(eps.at(0, 2), 1.0f);
  for (size_t c = 0; c < 3; ++c) EXPECT_EQ(eps.at(1, c), 0.0f);
}

}  // namespace
}  // namespace nn
}  // namespace simcard
