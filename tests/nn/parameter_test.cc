#include "nn/parameter.h"

#include <gtest/gtest.h>

namespace simcard {
namespace nn {
namespace {

TEST(ParameterTest, ConstructionInitializesGradToZero) {
  Matrix value = Matrix::Full(2, 3, 1.5f);
  Parameter p("w", value);
  EXPECT_EQ(p.name(), "w");
  EXPECT_EQ(p.value().at(1, 2), 1.5f);
  EXPECT_EQ(p.grad().rows(), 2u);
  EXPECT_EQ(p.grad().cols(), 3u);
  EXPECT_EQ(p.grad().Sum(), 0.0);
}

TEST(ParameterTest, ZeroGradClears) {
  Parameter p("w", Matrix::Full(2, 2, 1.0f));
  p.grad().Fill(3.0f);
  p.ZeroGrad();
  EXPECT_EQ(p.grad().Sum(), 0.0);
}

TEST(ParameterTest, NumScalars) {
  Parameter p("w", Matrix(4, 5));
  EXPECT_EQ(p.NumScalars(), 20u);
}

TEST(ParameterTest, SerializationRoundTrip) {
  Rng rng(1);
  Parameter p("weights", Matrix::Gaussian(3, 4, 1.0f, &rng));
  Serializer out;
  p.Serialize(&out);
  Deserializer in(out.bytes());
  Parameter restored;
  ASSERT_TRUE(restored.Deserialize(&in).ok());
  EXPECT_EQ(restored.name(), "weights");
  EXPECT_TRUE(restored.value().AllClose(p.value(), 0.0f));
  EXPECT_EQ(restored.grad().Sum(), 0.0);  // grads never persist
}

}  // namespace
}  // namespace nn
}  // namespace simcard
