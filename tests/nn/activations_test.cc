#include "nn/activations.h"

#include <gtest/gtest.h>

#include <cmath>

namespace simcard {
namespace nn {
namespace {

TEST(ActivationsTest, ReluClampsNegatives) {
  Relu relu;
  Matrix x = Matrix::RowVector({-2.0f, 0.0f, 3.0f});
  Matrix y = relu.Forward(x);
  EXPECT_EQ(y.at(0, 0), 0.0f);
  EXPECT_EQ(y.at(0, 1), 0.0f);
  EXPECT_EQ(y.at(0, 2), 3.0f);
}

TEST(ActivationsTest, ReluBackwardMasksNegatives) {
  Relu relu;
  Matrix x = Matrix::RowVector({-1.0f, 2.0f});
  relu.Forward(x);
  Matrix g = Matrix::RowVector({5.0f, 5.0f});
  Matrix gx = relu.Backward(g);
  EXPECT_EQ(gx.at(0, 0), 0.0f);
  EXPECT_EQ(gx.at(0, 1), 5.0f);
}

TEST(ActivationsTest, SigmoidRangeAndSymmetry) {
  Sigmoid s;
  Matrix x = Matrix::RowVector({-100.0f, -1.0f, 0.0f, 1.0f, 100.0f});
  Matrix y = s.Forward(x);
  EXPECT_NEAR(y.at(0, 0), 0.0f, 1e-6f);
  EXPECT_NEAR(y.at(0, 2), 0.5f, 1e-6f);
  EXPECT_NEAR(y.at(0, 4), 1.0f, 1e-6f);
  EXPECT_NEAR(y.at(0, 1) + y.at(0, 3), 1.0f, 1e-5f);
}

TEST(ActivationsTest, TanhMatchesStd) {
  Tanh t;
  Matrix x = Matrix::RowVector({-0.7f, 0.3f});
  Matrix y = t.Forward(x);
  EXPECT_NEAR(y.at(0, 0), std::tanh(-0.7f), 1e-6f);
  EXPECT_NEAR(y.at(0, 1), std::tanh(0.3f), 1e-6f);
}

TEST(ActivationsTest, SoftplusPositiveAndSmooth) {
  Softplus sp;
  Matrix x = Matrix::RowVector({-30.0f, 0.0f, 30.0f});
  Matrix y = sp.Forward(x);
  EXPECT_GE(y.at(0, 0), 0.0f);
  EXPECT_NEAR(y.at(0, 1), std::log(2.0f), 1e-5f);
  EXPECT_NEAR(y.at(0, 2), 30.0f, 1e-4f);
}

TEST(ActivationsTest, ScalarHelpersStableAtExtremes) {
  EXPECT_NEAR(SigmoidScalar(500.0f), 1.0f, 1e-6f);
  EXPECT_NEAR(SigmoidScalar(-500.0f), 0.0f, 1e-6f);
  EXPECT_TRUE(std::isfinite(SoftplusScalar(500.0f)));
  EXPECT_TRUE(std::isfinite(SoftplusScalar(-500.0f)));
  EXPECT_GE(SoftplusScalar(-500.0f), 0.0f);
}

// All activations used on the tau path must be monotone non-decreasing;
// the model's monotonicity proof depends on it.
class MonotoneActivationTest : public ::testing::TestWithParam<int> {};

TEST_P(MonotoneActivationTest, NonDecreasing) {
  std::unique_ptr<Layer> act;
  switch (GetParam()) {
    case 0:
      act = std::make_unique<Relu>();
      break;
    case 1:
      act = std::make_unique<Sigmoid>();
      break;
    case 2:
      act = std::make_unique<Tanh>();
      break;
    default:
      act = std::make_unique<Softplus>();
      break;
  }
  float prev = -std::numeric_limits<float>::infinity();
  for (float x = -5.0f; x <= 5.0f; x += 0.25f) {
    Matrix in = Matrix::RowVector({x});
    const float y = act->Forward(in).at(0, 0);
    EXPECT_GE(y, prev);
    prev = y;
  }
}

INSTANTIATE_TEST_SUITE_P(AllActivations, MonotoneActivationTest,
                         ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace nn
}  // namespace simcard
