#include "nn/init.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"

namespace simcard {
namespace nn {
namespace {

TEST(InitTest, XavierUniformBounds) {
  Rng rng(1);
  const size_t fan_in = 30;
  const size_t fan_out = 50;
  Matrix w = XavierUniform(fan_in, fan_out, &rng);
  const float limit = std::sqrt(6.0f / (fan_in + fan_out));
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(std::fabs(w.data()[i]), limit);
  }
  // Roughly zero-mean.
  EXPECT_NEAR(w.Sum() / w.size(), 0.0, limit / 10);
}

TEST(InitTest, HeGaussianVariance) {
  Rng rng(2);
  const size_t fan_in = 100;
  Matrix w = HeGaussian(fan_in, 200, &rng);
  double sq = 0;
  for (size_t i = 0; i < w.size(); ++i) {
    sq += static_cast<double>(w.data()[i]) * w.data()[i];
  }
  EXPECT_NEAR(sq / w.size(), 2.0 / fan_in, 0.2 / fan_in * 10);
}

TEST(InitTest, InverseSoftplusInvertsSoftplus) {
  for (float y : {0.01f, 0.1f, 0.7f, 1.0f, 5.0f, 25.0f}) {
    const float x = InverseSoftplus(y);
    EXPECT_NEAR(SoftplusScalar(x), y, 1e-4f * std::max(1.0f, y)) << y;
  }
}

TEST(InitTest, PositiveRawInitYieldsPositiveEffectiveWeights) {
  Rng rng(3);
  Matrix raw = PositiveRawInit(20, 20, &rng);
  for (size_t i = 0; i < raw.size(); ++i) {
    EXPECT_GT(SoftplusScalar(raw.data()[i]), 0.0f);
  }
}

TEST(InitTest, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  EXPECT_TRUE(XavierUniform(5, 5, &a).AllClose(XavierUniform(5, 5, &b), 0.0f));
}

}  // namespace
}  // namespace nn
}  // namespace simcard
