#include "nn/optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/linear.h"
#include "nn/losses.h"
#include "nn/sequential.h"
#include "nn/activations.h"

namespace simcard {
namespace nn {
namespace {

// Minimizes f(w) = (w - 3)^2 with one scalar parameter.
template <typename Opt>
double MinimizeQuadratic(Opt* opt, Parameter* p, int steps) {
  for (int i = 0; i < steps; ++i) {
    opt->ZeroGrad();
    const float w = p->value().at(0, 0);
    p->grad().at(0, 0) = 2.0f * (w - 3.0f);
    opt->Step();
  }
  return p->value().at(0, 0);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Parameter p("w", Matrix::Zeros(1, 1));
  Sgd opt({&p}, /*lr=*/0.1f, /*momentum=*/0.0f);
  EXPECT_NEAR(MinimizeQuadratic(&opt, &p, 100), 3.0, 1e-4);
}

TEST(SgdTest, MomentumConverges) {
  Parameter p("w", Matrix::Zeros(1, 1));
  Sgd opt({&p}, /*lr=*/0.05f, /*momentum=*/0.9f);
  EXPECT_NEAR(MinimizeQuadratic(&opt, &p, 200), 3.0, 1e-3);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Parameter p("w", Matrix::Zeros(1, 1));
  Adam opt({&p}, /*lr=*/0.1f);
  EXPECT_NEAR(MinimizeQuadratic(&opt, &p, 300), 3.0, 1e-3);
}

TEST(OptimizerTest, ZeroGradClears) {
  Parameter p("w", Matrix::Zeros(2, 2));
  p.grad().Fill(5.0f);
  Sgd opt({&p}, 0.1f);
  opt.ZeroGrad();
  EXPECT_EQ(p.grad().Sum(), 0.0);
}

TEST(OptimizerTest, ClipGradNormScalesDown) {
  Parameter p("w", Matrix::Zeros(1, 2));
  p.grad().at(0, 0) = 3.0f;
  p.grad().at(0, 1) = 4.0f;  // norm 5
  Sgd opt({&p}, 0.1f);
  const double pre = opt.ClipGradNorm(1.0);
  EXPECT_NEAR(pre, 5.0, 1e-6);
  EXPECT_NEAR(p.grad().Norm(), 1.0, 1e-5);
}

TEST(OptimizerTest, ClipGradNormLeavesSmallGradients) {
  Parameter p("w", Matrix::Zeros(1, 2));
  p.grad().at(0, 0) = 0.3f;
  Sgd opt({&p}, 0.1f);
  opt.ClipGradNorm(1.0);
  EXPECT_NEAR(p.grad().at(0, 0), 0.3f, 1e-7f);
}

TEST(AdamTest, TrainsSmallRegressionEndToEnd) {
  // y = 2*x0 - x1 + 0.5, learned by a linear model under MSE.
  Rng rng(3);
  Sequential model;
  model.Emplace<Linear>(2, 1, &rng);
  Adam opt(model.Parameters(), 0.05f);
  MseLoss loss;

  Matrix x = Matrix::Gaussian(64, 2, 1.0f, &rng);
  Matrix y(64, 1);
  for (size_t r = 0; r < 64; ++r) {
    y.at(r, 0) = 2.0f * x.at(r, 0) - x.at(r, 1) + 0.5f;
  }
  double final_loss = 0.0;
  for (int epoch = 0; epoch < 400; ++epoch) {
    opt.ZeroGrad();
    Matrix pred = model.Forward(x);
    Matrix grad;
    final_loss = loss.Compute(pred, y, &grad);
    model.Backward(grad);
    opt.Step();
  }
  EXPECT_LT(final_loss, 1e-4);
}

TEST(SgdTest, MlpLearnsNonlinearFunction) {
  // y = |x| is learnable by a tiny ReLU MLP but not by a linear model.
  Rng rng(5);
  Sequential model;
  model.Emplace<Linear>(1, 8, &rng);
  model.Emplace<Relu>();
  model.Emplace<Linear>(8, 1, &rng);
  Adam opt(model.Parameters(), 0.02f);
  MseLoss loss;

  Matrix x(32, 1);
  Matrix y(32, 1);
  for (size_t r = 0; r < 32; ++r) {
    x.at(r, 0) = -2.0f + 4.0f * static_cast<float>(r) / 31.0f;
    y.at(r, 0) = std::fabs(x.at(r, 0));
  }
  double final_loss = 0.0;
  for (int epoch = 0; epoch < 1500; ++epoch) {
    opt.ZeroGrad();
    Matrix grad;
    final_loss = loss.Compute(model.Forward(x), y, &grad);
    model.Backward(grad);
    opt.Step();
  }
  EXPECT_LT(final_loss, 0.01);
}

}  // namespace
}  // namespace nn
}  // namespace simcard
