// Write-ahead journal framing: append/replay round-trips, group-commit
// accounting, fault injection, and the torn-write sweep — truncating the
// file at EVERY byte boundary of the last record must always replay the
// longest valid prefix, never garbage and never an error.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault.h"
#include "update/delta_journal.h"

namespace simcard {
namespace update {
namespace {

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/simcard_journal_XXXXXX";
    dir_ = ::mkdtemp(tmpl);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const { return dir_ + "/" + name; }

 private:
  std::string dir_;
};

std::vector<float> Point(size_t dim, float base) {
  std::vector<float> p(dim);
  for (size_t i = 0; i < dim; ++i) p[i] = base + 0.25f * static_cast<float>(i);
  return p;
}

uint64_t FileSize(const std::string& path) {
  return static_cast<uint64_t>(std::filesystem::file_size(path));
}

void TruncateTo(const std::string& path, uint64_t bytes) {
  ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(bytes)), 0);
}

TEST(DeltaJournalTest, AppendReplayRoundTrip) {
  TempDir tmp;
  const std::string path = tmp.path("journal-1.wal");
  const size_t dim = 4;
  {
    auto journal = DeltaJournal::Create(path, dim, JournalOptions{}).value();
    ASSERT_TRUE(journal->AppendEpochMark(1, 100).ok());
    ASSERT_TRUE(journal->AppendInsert(Point(dim, 1.0f)).ok());
    ASSERT_TRUE(journal->AppendErase(7).ok());
    ASSERT_TRUE(journal->AppendInsert(Point(dim, -3.0f)).ok());
    ASSERT_TRUE(journal->Sync().ok());
  }
  const auto replay = DeltaJournal::Replay(path).value();
  EXPECT_FALSE(replay.tail_truncated);
  EXPECT_EQ(replay.discarded_bytes, 0u);
  EXPECT_EQ(replay.valid_bytes, FileSize(path));
  ASSERT_EQ(replay.records.size(), 4u);
  EXPECT_EQ(replay.records[0].type, JournalRecordType::kEpochMark);
  EXPECT_EQ(replay.records[0].epoch, 1u);
  EXPECT_EQ(replay.records[0].base_rows, 100u);
  EXPECT_EQ(replay.records[1].type, JournalRecordType::kInsert);
  EXPECT_EQ(replay.records[1].point, Point(dim, 1.0f));
  EXPECT_EQ(replay.records[2].type, JournalRecordType::kErase);
  EXPECT_EQ(replay.records[2].row, 7u);
  EXPECT_EQ(replay.records[3].point, Point(dim, -3.0f));
}

TEST(DeltaJournalTest, RejectsWrongDimInsert) {
  TempDir tmp;
  auto journal =
      DeltaJournal::Create(tmp.path("j.wal"), 4, JournalOptions{}).value();
  ASSERT_TRUE(journal->AppendEpochMark(1, 0).ok());
  EXPECT_FALSE(journal->AppendInsert(Point(3, 0.0f)).ok());
}

TEST(DeltaJournalTest, GroupCommitAccounting) {
  TempDir tmp;
  JournalOptions opts;
  opts.group_commit = 3;
  auto journal = DeltaJournal::Create(tmp.path("j.wal"), 2, opts).value();
  ASSERT_TRUE(journal->AppendEpochMark(1, 0).ok());
  EXPECT_EQ(journal->unsynced_records(), 1u);
  ASSERT_TRUE(journal->AppendErase(0).ok());
  EXPECT_EQ(journal->unsynced_records(), 2u);
  // Third append reaches the group size: the batch fsyncs.
  ASSERT_TRUE(journal->AppendErase(1).ok());
  EXPECT_EQ(journal->unsynced_records(), 0u);
  ASSERT_TRUE(journal->AppendErase(2).ok());
  EXPECT_EQ(journal->unsynced_records(), 1u);
  ASSERT_TRUE(journal->Sync().ok());
  EXPECT_EQ(journal->unsynced_records(), 0u);
}

// The torn-write sweep: build a journal, then for EVERY byte boundary
// inside the final record, truncate a copy there and replay. The replay
// must recover exactly the records before the final one, report the torn
// tail, and OpenForAppend must produce a journal that extends cleanly.
TEST(DeltaJournalTest, TornTailSweepRecoversLongestValidPrefix) {
  TempDir tmp;
  const std::string path = tmp.path("journal-1.wal");
  const size_t dim = 3;
  uint64_t before_last = 0;
  {
    auto journal = DeltaJournal::Create(path, dim, JournalOptions{}).value();
    ASSERT_TRUE(journal->AppendEpochMark(1, 50).ok());
    ASSERT_TRUE(journal->AppendInsert(Point(dim, 2.0f)).ok());
    ASSERT_TRUE(journal->AppendErase(11).ok());
    before_last = journal->offset();
    ASSERT_TRUE(journal->AppendInsert(Point(dim, 9.0f)).ok());
    ASSERT_TRUE(journal->Sync().ok());
  }
  const uint64_t full = FileSize(path);
  ASSERT_GT(full, before_last);

  for (uint64_t cut = before_last; cut < full; ++cut) {
    const std::string torn = tmp.path("torn.wal");
    std::filesystem::copy_file(path, torn,
                               std::filesystem::copy_options::overwrite_existing);
    TruncateTo(torn, cut);
    auto replay_or = DeltaJournal::Replay(torn);
    ASSERT_TRUE(replay_or.ok()) << "cut at " << cut;
    const auto replay = std::move(replay_or).value();
    ASSERT_EQ(replay.records.size(), 3u) << "cut at " << cut;
    EXPECT_EQ(replay.valid_bytes, before_last) << "cut at " << cut;
    EXPECT_EQ(replay.tail_truncated, cut > before_last) << "cut at " << cut;
    EXPECT_EQ(replay.discarded_bytes, cut - before_last) << "cut at " << cut;

    // Re-open truncates the torn tail and appends cleanly after it.
    auto reopened = DeltaJournal::OpenForAppend(torn, dim, replay.valid_bytes,
                                                JournalOptions{});
    ASSERT_TRUE(reopened.ok()) << "cut at " << cut;
    ASSERT_TRUE(reopened.value()->AppendErase(1).ok());
    ASSERT_TRUE(reopened.value()->Sync().ok());
    const auto again = DeltaJournal::Replay(torn).value();
    ASSERT_EQ(again.records.size(), 4u) << "cut at " << cut;
    EXPECT_EQ(again.records[3].type, JournalRecordType::kErase);
    EXPECT_EQ(again.records[3].row, 1u);
    EXPECT_FALSE(again.tail_truncated);
  }
}

// Corruption mid-file (not just truncation): flipping a payload byte of the
// second record invalidates its CRC; replay keeps only the first record.
TEST(DeltaJournalTest, CorruptPayloadStopsReplayAtPrefix) {
  TempDir tmp;
  const std::string path = tmp.path("journal-1.wal");
  uint64_t after_first = 0;
  {
    auto journal = DeltaJournal::Create(path, 2, JournalOptions{}).value();
    ASSERT_TRUE(journal->AppendEpochMark(1, 10).ok());
    after_first = journal->offset();
    ASSERT_TRUE(journal->AppendErase(3).ok());
    ASSERT_TRUE(journal->Sync().ok());
  }
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    // 8 bytes frame header, then the payload — flip its second byte.
    f.seekp(static_cast<std::streamoff>(after_first + 8 + 1));
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(static_cast<std::streamoff>(after_first + 8 + 1));
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
  }
  const auto replay = DeltaJournal::Replay(path).value();
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.valid_bytes, after_first);
  EXPECT_TRUE(replay.tail_truncated);
}

TEST(DeltaJournalTest, ReplayRejectsBadHeader) {
  TempDir tmp;
  const std::string path = tmp.path("bogus.wal");
  { std::ofstream(path) << "definitely not a journal header"; }
  EXPECT_FALSE(DeltaJournal::Replay(path).ok());
  EXPECT_FALSE(DeltaJournal::Replay(tmp.path("missing.wal")).ok());
}

TEST(DeltaJournalTest, FaultSiteFailsAppendAndSync) {
  TempDir tmp;
  auto journal =
      DeltaJournal::Create(tmp.path("j.wal"), 2, JournalOptions{}).value();
  ASSERT_TRUE(journal->AppendEpochMark(1, 0).ok());
  fault::Configure(fault::FaultConfig{.sites = "update.journal_io",
                                      .max_injections = 2});
  EXPECT_FALSE(journal->AppendErase(0).ok());
  EXPECT_FALSE(journal->Sync().ok());
  fault::Disable();
  EXPECT_TRUE(journal->AppendErase(0).ok());
  EXPECT_TRUE(journal->Sync().ok());
}

}  // namespace
}  // namespace update
}  // namespace simcard
