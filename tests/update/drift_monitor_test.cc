// Drift assessment: which segments a pending delta batch makes stale, and
// when total churn forces a full re-segmentation.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cluster/segmentation.h"
#include "data/generators.h"
#include "update/drift_monitor.h"

namespace simcard {
namespace update {
namespace {

struct Fixture {
  Dataset dataset;
  Segmentation seg;

  Fixture() {
    dataset = MakeAnalogDataset("glove-sim", Scale::kTiny, 21).value();
    SegmentationOptions opts;
    opts.target_segments = 6;
    opts.seed = 22;
    seg = SegmentData(dataset, opts).value();
  }

  DeltaSnapshot EmptySnapshot() const {
    DeltaSnapshot snap;
    snap.overlay = DeltaOverlay(dataset.size(), dataset.dim());
    snap.per_segment.assign(seg.num_segments(), 0);
    return snap;
  }

  // Stages `count` inserts pinned to `segment`, each `scale` times the
  // segment radius away from the centroid along the first axis.
  void StageInsertsAt(DeltaSnapshot* snap, size_t segment, size_t count,
                      float scale) const {
    const float* c = seg.centroids.Row(segment);
    std::vector<float> point(c, c + dataset.dim());
    point[0] += scale * std::max(seg.radius[segment], 1e-3f);
    for (size_t i = 0; i < count; ++i) {
      ASSERT_TRUE(snap->overlay.StageInsert(point).ok());
      snap->insert_segments.push_back(segment);
      ++snap->per_segment[segment];
    }
  }
};

TEST(DriftMonitorTest, QuietSegmentIsNotStale) {
  Fixture f;
  DeltaSnapshot snap = f.EmptySnapshot();
  // One on-centroid insert into a ~300-member segment: fraction and
  // predicted displacement both sit far below the thresholds.
  f.StageInsertsAt(&snap, 0, 1, 0.0f);

  DriftMonitor monitor;
  DriftReport report = monitor.Assess(f.seg, f.dataset, snap);
  ASSERT_EQ(report.segments.size(), 1u);
  EXPECT_EQ(report.segments[0].segment, 0u);
  EXPECT_FALSE(report.segments[0].stale);
  EXPECT_TRUE(report.stale_segments.empty());
  EXPECT_FALSE(report.escalate_full_reseg);
}

TEST(DriftMonitorTest, HeavyChurnFlagsSegmentStale) {
  Fixture f;
  DeltaSnapshot snap = f.EmptySnapshot();
  // Erase 10% of segment 0's members: over the 5% delta-fraction bar.
  const size_t s = 0;
  const size_t count = f.seg.members[s].size() / 10;
  ASSERT_GT(count, 0u);
  std::vector<uint32_t> rows(f.seg.members[s].begin(),
                             f.seg.members[s].begin() + count);
  std::sort(rows.begin(), rows.end());
  for (uint32_t row : rows) {
    ASSERT_TRUE(snap.overlay.StageErase(row).ok());
    ++snap.per_segment[s];
  }

  DriftMonitor monitor;
  DriftReport report = monitor.Assess(f.seg, f.dataset, snap);
  ASSERT_EQ(report.stale_segments.size(), 1u);
  EXPECT_EQ(report.stale_segments[0], s);
  EXPECT_GE(report.segments[0].delta_fraction, 0.05);
  EXPECT_GE(report.segments[0].card_shift, 0.05);
}

TEST(DriftMonitorTest, OutlierInsertsTripCentroidShift) {
  Fixture f;
  DeltaSnapshot snap = f.EmptySnapshot();
  // Few inserts (under the count bar) but far away: the predicted
  // running-mean centroid moves by more than a quarter radius.
  const size_t s = 1;
  const size_t count =
      std::max<size_t>(1, f.seg.members[s].size() / 25);  // 4% < 5%
  f.StageInsertsAt(&snap, s, count, 50.0f);

  DriftMonitor monitor;
  DriftReport report = monitor.Assess(f.seg, f.dataset, snap);
  ASSERT_EQ(report.segments.size(), 1u);
  EXPECT_LT(report.segments[0].delta_fraction, 0.05);
  EXPECT_GE(report.segments[0].centroid_shift, 0.25);
  EXPECT_TRUE(report.segments[0].stale);
}

TEST(DriftMonitorTest, EmptyingASegmentIsMaximalDrift) {
  Fixture f;
  DeltaSnapshot snap = f.EmptySnapshot();
  const size_t s = 2;
  std::vector<uint32_t> rows(f.seg.members[s].begin(),
                             f.seg.members[s].end());
  std::sort(rows.begin(), rows.end());
  for (uint32_t row : rows) {
    ASSERT_TRUE(snap.overlay.StageErase(row).ok());
    ++snap.per_segment[s];
  }

  DriftMonitor monitor;
  DriftReport report = monitor.Assess(f.seg, f.dataset, snap);
  ASSERT_EQ(report.segments.size(), 1u);
  EXPECT_DOUBLE_EQ(report.segments[0].centroid_shift, 1.0);
  EXPECT_TRUE(report.segments[0].stale);
}

TEST(DriftMonitorTest, TotalChurnEscalatesToFullReseg) {
  Fixture f;
  DeltaSnapshot snap = f.EmptySnapshot();
  const size_t count = f.dataset.size() / 2;  // exactly the 0.5 ceiling
  for (uint32_t row = 0; row < count; ++row) {
    ASSERT_TRUE(snap.overlay.StageErase(row).ok());
    ++snap.per_segment[f.seg.assignment[row]];
  }

  DriftMonitor monitor;
  DriftReport report = monitor.Assess(f.seg, f.dataset, snap);
  EXPECT_GE(report.total_delta_fraction, 0.5);
  EXPECT_TRUE(report.escalate_full_reseg);

  // A raised ceiling tolerates the same batch.
  DriftThresholds relaxed;
  relaxed.full_reseg_fraction = 0.9;
  DriftReport tolerant =
      DriftMonitor(relaxed).Assess(f.seg, f.dataset, snap);
  EXPECT_FALSE(tolerant.escalate_full_reseg);
}

}  // namespace
}  // namespace update
}  // namespace simcard
