// Durability and crash recovery: every Insert/Erase the manager
// acknowledged must survive an in-process "kill" (manager destroyed, files
// left behind) — including kills injected at every fault site on the
// refresh path — and the recovered estimator must keep the batch==single
// parity guarantee. Also covers refresh retry/backoff/degraded and the
// DeltaBuffer capacity backpressure satellite.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "data/generators.h"
#include "eval/harness.h"
#include "obs/segment_health.h"
#include "serve/model_registry.h"
#include "update/recovery.h"
#include "update/update_manager.h"

namespace simcard {
namespace update {
namespace {

GlEstimatorConfig FastConfig() {
  GlEstimatorConfig config = GlEstimatorConfig::GlCnn();
  config.local_train.epochs = 8;
  config.global_train.epochs = 8;
  config.tuner.max_trials = 2;
  config.tuner.trial_epochs = 3;
  config.tune_per_segment = false;
  return config;
}

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/simcard_recovery_XXXXXX";
    dir_ = ::mkdtemp(tmpl);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const { return dir_ + "/" + name; }

 private:
  std::string dir_;
};

struct DurableFixture {
  TempDir tmp;
  ExperimentEnv env;
  std::unique_ptr<GlEstimator> est;
  GlEstimatorConfig config = FastConfig();
  size_t base_rows = 0;
  size_t dim = 0;

  explicit DurableFixture(uint64_t seed = 31) {
    EnvOptions opts;
    opts.num_segments = 6;
    opts.seed = seed;
    env =
        std::move(BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
    base_rows = env.dataset.size();
    dim = env.dataset.dim();
    est = std::make_unique<GlEstimator>(config);
    TrainContext ctx = MakeTrainContext(env);
    EXPECT_TRUE(est->Train(ctx).ok());
  }

  UpdateOptions DurableOptions() {
    UpdateOptions opts;
    opts.journal_dir = tmp.path("wal");
    opts.allow_full_reseg = false;
    opts.fine_tune_epochs = 2;
    return opts;
  }

  std::unique_ptr<UpdateManager> MakeManager(serve::ModelRegistry* registry,
                                             const UpdateOptions& opts) {
    return std::make_unique<UpdateManager>(std::move(env.dataset),
                                           std::move(env.workload), registry,
                                           opts);
  }
};

// Acks `inserted.rows()` inserts and erases of rows [0, erases).
void Ingest(UpdateManager* manager, const Matrix& inserted, size_t erases) {
  for (size_t i = 0; i < inserted.rows(); ++i) {
    ASSERT_TRUE(manager
                    ->Insert(std::span<const float>(inserted.Row(i),
                                                    inserted.cols()))
                    .ok());
  }
  for (uint32_t row = 0; row < erases; ++row) {
    ASSERT_TRUE(manager->Erase(row).ok());
  }
}

// The zero-loss invariant, checked at the end state: after a fault-free
// refresh on the recovered manager, every acknowledged insert is a row of
// the dataset and the row count reflects every acknowledged delta exactly
// once.
void ExpectEndState(UpdateManager* recovered, size_t base_rows,
                    const Matrix& inserted, size_t erases) {
  ASSERT_TRUE(recovered->Refresh().ok());
  EXPECT_EQ(recovered->pending(), 0u);
  ASSERT_EQ(recovered->dataset().size(),
            base_rows + inserted.rows() - erases);
  const Matrix& points = recovered->dataset().points();
  for (size_t i = 0; i < inserted.rows(); ++i) {
    bool found = false;
    for (size_t r = 0; r < points.rows() && !found; ++r) {
      found = std::memcmp(points.Row(r), inserted.Row(i),
                          points.cols() * sizeof(float)) == 0;
    }
    EXPECT_TRUE(found) << "acknowledged insert " << i
                       << " missing after recovery";
  }
}

TEST(RecoveryTest, RecoverFromEmptyDirIsNotFound) {
  TempDir tmp;
  serve::ModelRegistry registry;
  UpdateOptions opts;
  EXPECT_FALSE(UpdateManager::RecoverFrom(&registry, opts).ok());
  opts.journal_dir = tmp.path("nothing");
  const auto result = UpdateManager::RecoverFrom(&registry, opts);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(RecoveryTest, KillAfterIngestRecoversEveryAck) {
  DurableFixture f;
  const UpdateOptions opts = f.DurableOptions();
  serve::ModelRegistry registry;
  auto manager = f.MakeManager(&registry, opts);
  ASSERT_TRUE(manager->Start(*f.est).ok());
  EXPECT_EQ(manager->durable_epoch(), 1u);
  EXPECT_TRUE(std::filesystem::exists(ManifestPath(opts.journal_dir)));
  EXPECT_TRUE(std::filesystem::exists(JournalPath(opts.journal_dir, 1)));

  const Matrix inserted =
      MakeAnalogUpdates("glove-sim", Scale::kTiny, 6, 91).value();
  Ingest(manager.get(), inserted, 4);
  EXPECT_EQ(manager->pending(), 10u);

  manager.reset();  // kill: no shutdown hook, only what hit the files

  serve::ModelRegistry after;
  auto recovered = UpdateManager::RecoverFrom(&after, opts, &f.config);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  UpdateManager* rec = recovered.value().get();
  EXPECT_EQ(rec->pending(), 10u);  // every ack staged again
  EXPECT_EQ(rec->durable_epoch(), 1u);
  EXPECT_EQ(after.epoch(), 1u);
  ASSERT_NE(after.Current().estimator, nullptr);

  ExpectEndState(rec, f.base_rows, inserted, 4);
  EXPECT_EQ(rec->durable_epoch(), 2u);
  EXPECT_EQ(after.epoch(), 2u);
  // The superseded epoch's artifacts were garbage-collected.
  EXPECT_FALSE(std::filesystem::exists(ModelPath(opts.journal_dir, 1)));
  EXPECT_TRUE(std::filesystem::exists(ModelPath(opts.journal_dir, 2)));
}

TEST(RecoveryTest, KillAfterCommittedRefreshRecoversTailEpoch) {
  DurableFixture f;
  const UpdateOptions opts = f.DurableOptions();
  serve::ModelRegistry registry;
  auto manager = f.MakeManager(&registry, opts);
  ASSERT_TRUE(manager->Start(*f.est).ok());

  const Matrix first =
      MakeAnalogUpdates("glove-sim", Scale::kTiny, 5, 93).value();
  Ingest(manager.get(), first, 5);
  ASSERT_TRUE(manager->Refresh().ok());
  EXPECT_EQ(manager->durable_epoch(), 2u);

  // New acks land in epoch 2's journal; kill before any further refresh.
  const Matrix second =
      MakeAnalogUpdates("glove-sim", Scale::kTiny, 3, 95).value();
  Ingest(manager.get(), second, 0);
  manager.reset();

  serve::ModelRegistry after;
  auto recovered = UpdateManager::RecoverFrom(&after, opts, &f.config);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  UpdateManager* rec = recovered.value().get();
  EXPECT_EQ(after.epoch(), 2u);
  EXPECT_EQ(rec->pending(), 3u);
  // Epoch 1's refresh applied first's 5 inserts and 5 erases already.
  EXPECT_EQ(rec->dataset().size(), f.base_rows);
  ExpectEndState(rec, f.base_rows, second, 0);
}

// The kill-at-every-fault-site sweep: arm each refresh-path fault site (at
// every distinct hit of it), let the refresh fail (or not), kill, recover,
// and require the zero-loss end state every single time. Sites whose
// failure lands inside the durable-commit window must also quarantine the
// manager (needs_recovery) instead of accepting acks that could be lost.
TEST(RecoveryTest, KillAtEveryFaultSiteLosesNoAcks) {
  struct FaultSpec {
    const char* site;
    uint64_t skip;
  };
  const FaultSpec kSweep[] = {
      {"update.refresh_io", 0},    // epoch artifact persistence
      {"update.refresh_finetune", 0},
      {"update.journal_io", 0},    // successor journal Create
      {"update.journal_io", 1},    // epoch-mark append
      {"update.journal_io", 2},    // successor journal Sync
      {"update.journal_io", 3},    // rearm-time Sync (durable window)
      {"io.save", 0},              // dataset artifact save
      {"io.save", 1},              // model artifact save
      {"io.save", 2},              // MANIFEST rename (durable window)
  };
  for (const FaultSpec& spec : kSweep) {
    SCOPED_TRACE(std::string(spec.site) + " skip=" +
                 std::to_string(spec.skip));
    DurableFixture f(/*seed=*/31);
    const UpdateOptions opts = f.DurableOptions();
    serve::ModelRegistry registry;
    auto manager = f.MakeManager(&registry, opts);
    ASSERT_TRUE(manager->Start(*f.est).ok());
    const Matrix inserted =
        MakeAnalogUpdates("glove-sim", Scale::kTiny, 5, 97).value();
    Ingest(manager.get(), inserted, 3);

    fault::FaultConfig config;
    config.sites = spec.site;
    config.max_injections = 1;
    config.skip_first = spec.skip;
    fault::Configure(config);
    const auto refresh = manager->Refresh();
    fault::Disable();
    EXPECT_FALSE(refresh.ok());  // every sweep point hits a real site
    if (manager->needs_recovery()) {
      // Mid-commit failure: the manager must refuse acks it could lose.
      const float zeros[64] = {};
      EXPECT_FALSE(
          manager->Insert(std::span<const float>(zeros, f.dim)).ok());
      EXPECT_FALSE(manager->Refresh().ok());
    } else {
      // Clean failure: served epoch untouched, every ack pending again.
      EXPECT_EQ(manager->pending(), 8u);
      EXPECT_EQ(registry.epoch(), 1u);
    }
    const uint64_t committed = manager->durable_epoch();
    EXPECT_EQ(committed, 1u);  // no sweep point may half-commit epoch 2
    manager.reset();  // kill

    serve::ModelRegistry after;
    auto recovered = UpdateManager::RecoverFrom(&after, opts, &f.config);
    ASSERT_TRUE(recovered.ok()) << recovered.status().message();
    UpdateManager* rec = recovered.value().get();
    EXPECT_EQ(after.epoch(), committed);  // epochs never move backwards
    EXPECT_FALSE(rec->needs_recovery());
    EXPECT_EQ(rec->pending(), 8u);
    ExpectEndState(rec, f.base_rows, inserted, 3);
  }
}

// Satellite (c): after a mid-refresh kill and recovery, the republished
// estimator must still satisfy the batch==single parity guarantee.
TEST(RecoveryTest, BatchSingleParityHoldsAfterRecovery) {
  DurableFixture f;
  const UpdateOptions opts = f.DurableOptions();
  serve::ModelRegistry registry;
  auto manager = f.MakeManager(&registry, opts);
  ASSERT_TRUE(manager->Start(*f.est).ok());
  const Matrix inserted =
      MakeAnalogUpdates("glove-sim", Scale::kTiny, 6, 99).value();
  Ingest(manager.get(), inserted, 4);

  fault::FaultConfig config;
  config.sites = "update.refresh_finetune";
  config.max_injections = 1;
  fault::Configure(config);
  EXPECT_FALSE(manager->Refresh().ok());  // the mid-refresh "kill" point
  fault::Disable();
  manager.reset();

  serve::ModelRegistry after;
  auto recovered = UpdateManager::RecoverFrom(&after, opts, &f.config);
  ASSERT_TRUE(recovered.ok()) << recovered.status().message();
  UpdateManager* rec = recovered.value().get();
  ASSERT_TRUE(rec->Refresh().value().refreshed);

  const auto published = after.Current().estimator;
  ASSERT_NE(published, nullptr);
  const SearchWorkload& workload = rec->workload();
  const size_t n = std::min<size_t>(workload.test.size(), 16);
  ASSERT_GT(n, 0u);
  Matrix queries(n, f.dim);
  std::vector<float> taus(n);
  for (size_t i = 0; i < n; ++i) {
    queries.SetRow(i, workload.test_queries.Row(workload.test[i].row));
    const auto& thresholds = workload.test[i].thresholds;
    taus[i] = thresholds[i % thresholds.size()].tau;
  }
  const std::vector<double> batch = published->EstimateSearchBatch(
      queries, std::span<const float>(taus.data(), taus.size()));
  ASSERT_EQ(batch.size(), n);
  for (size_t i = 0; i < n; ++i) {
    EstimateRequest request{
        std::span<const float>(queries.Row(i), f.dim), taus[i], {}};
    EXPECT_DOUBLE_EQ(batch[i], published->Estimate(request)) << "query " << i;
  }
}

// Satellite (b) + tentpole 3: failed refreshes propagate their Status,
// restage every ack, back off Tick, and trip/clear the degraded state.
TEST(RecoveryTest, RefreshFailuresBackOffThenDegradeThenHeal) {
  DurableFixture f;
  UpdateOptions opts;  // in-memory: retry logic is durability-independent
  opts.allow_full_reseg = false;
  opts.fine_tune_epochs = 2;
  opts.refresh_delta_threshold = 1;
  opts.refresh_retry_budget = 1;
  opts.refresh_backoff_base_ms = 60000.0;  // park Tick for the whole test
  serve::ModelRegistry registry;
  auto manager = f.MakeManager(&registry, opts);
  ASSERT_TRUE(manager->Start(*f.est).ok());
  const Matrix inserted =
      MakeAnalogUpdates("glove-sim", Scale::kTiny, 3, 101).value();
  Ingest(manager.get(), inserted, 0);

  fault::FaultConfig config;
  config.sites = "update.refresh_finetune";
  config.max_injections = 8;
  fault::Configure(config);
  EXPECT_FALSE(manager->Refresh().ok());  // satellite (b): Status surfaces
  EXPECT_EQ(manager->consecutive_failures(), 1u);
  EXPECT_FALSE(manager->degraded());
  EXPECT_EQ(manager->pending(), 3u);  // restaged, nothing lost
  EXPECT_EQ(registry.epoch(), 1u);    // served epoch untouched

  // Within the backoff window Tick refuses to retry.
  EXPECT_FALSE(manager->Tick().value().refreshed);
  EXPECT_EQ(manager->consecutive_failures(), 1u);

  // An explicit Refresh bypasses the backoff; its failure exhausts the
  // budget of 1 and trips the degraded circuit.
  EXPECT_FALSE(manager->Refresh().ok());
  EXPECT_TRUE(manager->degraded());
  EXPECT_TRUE(obs::SegmentHealthRegistry::Default().update_degraded());
  EXPECT_FALSE(manager->Tick().value().refreshed);  // circuit open

  // Healing: the fault clears, an explicit Refresh succeeds, and both the
  // failure count and the health flag reset.
  fault::Disable();
  EXPECT_TRUE(manager->Refresh().value().refreshed);
  EXPECT_FALSE(manager->degraded());
  EXPECT_EQ(manager->consecutive_failures(), 0u);
  EXPECT_FALSE(obs::SegmentHealthRegistry::Default().update_degraded());
  EXPECT_EQ(registry.epoch(), 2u);
  EXPECT_EQ(manager->dataset().size(), f.base_rows + 3);
}

// A delta whose journal append fails is NOT acknowledged, so it must not
// survive in the overlay either — otherwise the next refresh would apply a
// mutation the caller was told failed (found by the chaos drill).
TEST(RecoveryTest, FailedJournalAppendLeavesNoGhostDelta) {
  DurableFixture f;
  const UpdateOptions opts = f.DurableOptions();
  serve::ModelRegistry registry;
  auto manager = f.MakeManager(&registry, opts);
  ASSERT_TRUE(manager->Start(*f.est).ok());
  const Matrix inserted =
      MakeAnalogUpdates("glove-sim", Scale::kTiny, 3, 105).value();
  Ingest(manager.get(), inserted, 2);  // 5 acked deltas
  ASSERT_EQ(manager->pending(), 5u);

  fault::FaultConfig config;
  config.sites = "update.journal_io";
  config.max_injections = 2;
  fault::Configure(config);
  EXPECT_FALSE(manager
                   ->Insert(std::span<const float>(inserted.Row(2),
                                                   inserted.cols()))
                   .ok());
  EXPECT_FALSE(manager->Erase(2).ok());
  fault::Disable();
  EXPECT_EQ(manager->pending(), 5u);  // the failed deltas rolled back

  // The rolled-back row is erasable again (no ghost erase in the overlay),
  // and the refresh applies exactly the acknowledged deltas.
  ASSERT_TRUE(manager->Erase(2).ok());
  ASSERT_TRUE(manager->Refresh().value().refreshed);
  EXPECT_EQ(manager->dataset().size(), f.base_rows + 3 - 3);
}

// Satellite (a): the bounded buffer sheds with kUnavailable once full and
// accepts again after a refresh drains it.
TEST(RecoveryTest, DeltaCapacityShedsWithUnavailable) {
  DurableFixture f;
  UpdateOptions opts;
  opts.allow_full_reseg = false;
  opts.fine_tune_epochs = 2;
  opts.delta_capacity = 4;
  serve::ModelRegistry registry;
  auto manager = f.MakeManager(&registry, opts);
  ASSERT_TRUE(manager->Start(*f.est).ok());
  const Matrix inserted =
      MakeAnalogUpdates("glove-sim", Scale::kTiny, 5, 103).value();
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(manager
                    ->Insert(std::span<const float>(inserted.Row(i),
                                                    inserted.cols()))
                    .ok());
  }
  const Status shed = manager->Insert(
      std::span<const float>(inserted.Row(4), inserted.cols()));
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_EQ(manager->Erase(0).code(), StatusCode::kUnavailable);
  EXPECT_EQ(manager->buffer().shed(), 2u);
  EXPECT_EQ(manager->pending(), 4u);

  ASSERT_TRUE(manager->Refresh().value().refreshed);
  EXPECT_TRUE(manager
                  ->Insert(std::span<const float>(inserted.Row(4),
                                                  inserted.cols()))
                  .ok());
}

}  // namespace
}  // namespace update
}  // namespace simcard
