// SegmentFallback maintenance across membership changes: after inserts are
// routed in or members erased, RebuildFallbacks must re-sample the retained
// members from the CURRENT dataset and move the population clamp |D^[i]|
// with the segment — otherwise the degradation path answers from vectors
// that no longer exist (or clamps to a stale population).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/gl_estimator.h"
#include "eval/harness.h"

namespace simcard {
namespace {

GlEstimatorConfig FastConfig() {
  GlEstimatorConfig config = GlEstimatorConfig::GlCnn();
  config.local_train.epochs = 5;
  config.global_train.epochs = 5;
  config.tuner.max_trials = 2;
  config.tuner.trial_epochs = 3;
  config.tune_per_segment = false;
  return config;
}

struct Fixture {
  ExperimentEnv env;
  GlEstimator est{FastConfig()};

  Fixture() {
    EnvOptions opts;
    opts.num_segments = 6;
    env = std::move(
        BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
    TrainContext ctx = MakeTrainContext(env);
    EXPECT_TRUE(est.Train(ctx).ok());
  }
};

// True when every retained sample row-matches some vector in `dataset`.
bool SamplesExistInDataset(const SegmentFallback& fb, const Dataset& dataset) {
  const size_t dim = dataset.dim();
  for (size_t i = 0; i < fb.SampleCount(dim); ++i) {
    const float* sample = fb.samples.data() + i * dim;
    bool found = false;
    for (size_t row = 0; row < dataset.size() && !found; ++row) {
      found = std::memcmp(sample, dataset.Point(row),
                          dim * sizeof(float)) == 0;
    }
    if (!found) return false;
  }
  return true;
}

TEST(FallbackRebuildTest, InsertsGrowClampAndResample) {
  Fixture f;
  // Append copies of segment 0's centroid so routing is deterministic.
  const size_t s = 0;
  const size_t before_members = f.est.segmentation().members[s].size();
  const std::vector<float> old_samples = f.est.segment_fallback(s).samples;
  ASSERT_EQ(f.est.segment_fallback(s).segment_size, before_members);

  const size_t added = 40;
  Matrix extra(added, f.env.dataset.dim());
  const float* c = f.est.segmentation().centroids.Row(s);
  for (size_t i = 0; i < added; ++i) {
    std::memcpy(extra.Row(i), c, f.env.dataset.dim() * sizeof(float));
  }
  std::vector<uint32_t> new_rows;
  for (size_t i = 0; i < added; ++i) {
    new_rows.push_back(static_cast<uint32_t>(f.env.dataset.size() + i));
  }
  f.env.dataset.Append(extra);

  std::vector<size_t> touched;
  ASSERT_TRUE(f.est.RouteInserts(f.env.dataset, new_rows, &touched).ok());
  ASSERT_EQ(touched, std::vector<size_t>{s});
  f.est.RebuildFallbacks(f.env.dataset, touched, /*seed=*/99);

  const SegmentFallback& fb = f.est.segment_fallback(s);
  EXPECT_EQ(fb.segment_size, before_members + added);
  EXPECT_EQ(fb.segment_size, f.est.segmentation().members[s].size());
  // The member pool changed, so the retained sample must too.
  EXPECT_NE(fb.samples, old_samples);
  EXPECT_TRUE(SamplesExistInDataset(fb, f.env.dataset));
}

TEST(FallbackRebuildTest, ErasesShrinkClampAndDropDeadVectors) {
  Fixture f;
  const size_t s = 0;
  const auto& members = f.est.segmentation().members[s];
  const size_t before_members = members.size();
  ASSERT_GT(before_members, 8u);

  // Erase half of segment 0's members (plus nothing else), so the segment's
  // population halves while other segments only shift row ids.
  std::vector<uint32_t> rows(members.begin(),
                             members.begin() + before_members / 2);
  std::sort(rows.begin(), rows.end());
  f.env.dataset.EraseRows(rows);
  std::vector<size_t> touched;
  ASSERT_TRUE(f.est.EraseRows(f.env.dataset, rows, &touched).ok());
  EXPECT_FALSE(touched.empty());
  // Every segment's stored row ids shifted, so rebuild them all.
  std::vector<size_t> all(f.est.num_local_models());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  f.est.RebuildFallbacks(f.env.dataset, all, /*seed=*/100);

  const SegmentFallback& fb = f.est.segment_fallback(s);
  EXPECT_EQ(fb.segment_size, before_members - rows.size());
  EXPECT_EQ(fb.segment_size, f.est.segmentation().members[s].size());
  for (size_t i = 0; i < f.est.num_local_models(); ++i) {
    EXPECT_TRUE(SamplesExistInDataset(f.est.segment_fallback(i),
                                      f.env.dataset))
        << "segment " << i << " retained an erased vector";
  }
}

TEST(FallbackRebuildTest, RebuildIsSeedDeterministic) {
  Fixture f;
  std::vector<size_t> all(f.est.num_local_models());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  f.est.RebuildFallbacks(f.env.dataset, all, /*seed=*/7);
  std::vector<std::vector<float>> first;
  for (size_t i = 0; i < all.size(); ++i) {
    first.push_back(f.est.segment_fallback(i).samples);
  }
  f.est.RebuildFallbacks(f.env.dataset, all, /*seed=*/7);
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(f.est.segment_fallback(i).samples, first[i]) << i;
  }
}

}  // namespace
}  // namespace simcard
