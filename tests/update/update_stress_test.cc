// Concurrency stress for the online-update subsystem: writer threads keep
// pushing deltas and triggering refreshes (epoch hot-swaps) while reader
// threads hammer EstimationService::Submit. Run under TSan
// (scripts/check_sanitize.sh tsan) to prove ingestion, refresh, and
// publish are data-race free against concurrent serving; plain builds
// still check the functional invariants (finite estimates, monotone
// epochs per reader, no lost refreshes).
#include <atomic>
#include <cmath>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "eval/harness.h"
#include "serve/estimation_service.h"
#include "serve/model_registry.h"
#include "update/update_manager.h"

namespace simcard {
namespace update {
namespace {

GlEstimatorConfig FastConfig() {
  GlEstimatorConfig config = GlEstimatorConfig::GlCnn();
  config.local_train.epochs = 6;
  config.global_train.epochs = 6;
  config.tuner.max_trials = 2;
  config.tuner.trial_epochs = 3;
  config.tune_per_segment = false;
  return config;
}

TEST(UpdateStressTest, ReadersRaceDeltaIngestionAndRefreshes) {
  EnvOptions env_opts;
  env_opts.num_segments = 5;
  ExperimentEnv env = std::move(
      BuildEnvironment("glove-sim", Scale::kTiny, env_opts).value());
  const size_t dim = env.dataset.dim();
  const size_t base_rows = env.dataset.size();
  const Matrix queries = env.workload.test_queries;  // copy: env moves away

  GlEstimator initial(FastConfig());
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(initial.Train(ctx).ok());

  serve::ModelRegistry registry;
  UpdateOptions opts;
  opts.allow_full_reseg = false;
  opts.fine_tune_epochs = 1;  // keep each refresh short; we want many swaps
  UpdateManager manager(std::move(env.dataset), std::move(env.workload),
                       &registry, opts);
  ASSERT_TRUE(manager.Start(initial).ok());

  serve::ServeOptions serve_opts;
  serve_opts.num_threads = 3;
  serve_opts.queue_capacity = 256;
  serve_opts.default_deadline_ms = 10000.0;
  serve::EstimationService service(&registry, serve_opts);

  const Matrix inserts =
      MakeAnalogUpdates("glove-sim", Scale::kTiny, 256, 61).value();

  constexpr int kReaders = 3;
  constexpr int kRequestsPerReader = 80;
  constexpr int kRefreshes = 4;
  std::atomic<int> answered{0};
  std::atomic<int> failures{0};
  std::atomic<bool> writers_done{false};

  // Writer 1: a stream of inserts.
  std::thread inserter([&] {
    for (size_t i = 0; !writers_done.load() && i < inserts.rows(); ++i) {
      Status st = manager.Insert(
          std::span<const float>(inserts.Row(i % inserts.rows()), dim));
      if (!st.ok()) failures.fetch_add(1);  // inserts never expire
      std::this_thread::yield();
    }
  });

  // Writer 2: erases against whatever epoch is armed. Races with refresh
  // re-arms are expected — a row may vanish or duplicate mid-flight — so
  // rejected erases are fine; only crashes/races would fail the test.
  std::thread eraser([&] {
    uint32_t row = 1;
    while (!writers_done.load()) {
      (void)manager.Erase(row % static_cast<uint32_t>(base_rows));
      row += 7;
      std::this_thread::yield();
    }
  });

  // Writer 3: periodic refreshes hot-swapping the served model. Each round
  // stages one insert of its own so the refresh always has a delta to
  // apply (the concurrent erases may or may not land in time).
  std::thread refresher([&] {
    for (int i = 0; i < kRefreshes; ++i) {
      if (!manager.Insert(std::span<const float>(inserts.Row(0), dim))
               .ok()) {
        failures.fetch_add(1);
        break;
      }
      auto outcome_or = manager.Refresh();
      if (!outcome_or.ok() || !outcome_or.value().refreshed) {
        failures.fetch_add(1);
        break;
      }
      std::this_thread::yield();
    }
    writers_done.store(true);
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      uint64_t last_epoch = 0;
      for (int i = 0; i < kRequestsPerReader; ++i) {
        const size_t row = static_cast<size_t>(r + i) % queries.rows();
        EstimateRequest request;
        request.query = std::span<const float>(queries.Row(row), dim);
        request.tau = 0.3f + 0.05f * static_cast<float>(i % 5);
        request.options.deadline_ms = serve_opts.default_deadline_ms;
        serve::EstimateResponse response = service.Submit(request).get();
        if (response.status.code() == StatusCode::kUnavailable) continue;
        if (!response.status.ok() || !std::isfinite(response.estimate) ||
            response.estimate < 0.0) {
          failures.fetch_add(1);
          continue;
        }
        if (response.model_epoch < last_epoch) failures.fetch_add(1);
        last_epoch = response.model_epoch;
        answered.fetch_add(1);
      }
    });
  }

  for (auto& t : readers) t.join();
  inserter.join();
  eraser.join();
  refresher.join();
  service.Drain();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(answered.load(), 0);
  // Start published epoch 1; each non-empty refresh re-published. The
  // eraser guarantees pending deltas, so all refreshes took effect.
  EXPECT_EQ(registry.epoch(), static_cast<uint64_t>(kRefreshes) + 1);
  EXPECT_EQ(service.pending(), 0u);
}

}  // namespace
}  // namespace update
}  // namespace simcard
