// Refresh orchestration end to end: publish-on-start, no-op refreshes,
// incremental fine-tune vs full re-segmentation, threshold ticks, and
// deterministic republish.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "data/generators.h"
#include "eval/harness.h"
#include "serve/model_registry.h"
#include "update/update_manager.h"

namespace simcard {
namespace update {
namespace {

GlEstimatorConfig FastConfig() {
  GlEstimatorConfig config = GlEstimatorConfig::GlCnn();
  config.local_train.epochs = 8;
  config.global_train.epochs = 8;
  config.tuner.max_trials = 2;
  config.tuner.trial_epochs = 3;
  config.tune_per_segment = false;
  return config;
}

struct Fixture {
  ExperimentEnv env;
  std::unique_ptr<GlEstimator> est;
  serve::ModelRegistry registry;

  explicit Fixture(uint64_t seed = 31) {
    EnvOptions opts;
    opts.num_segments = 6;
    opts.seed = seed;
    env = std::move(
        BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
    est = std::make_unique<GlEstimator>(FastConfig());
    TrainContext ctx = MakeTrainContext(env);
    EXPECT_TRUE(est->Train(ctx).ok());
  }

  UpdateManager MakeManager(UpdateOptions opts) {
    return UpdateManager(std::move(env.dataset), std::move(env.workload),
                         &registry, opts);
  }
};

// Stages fraction/2 inserts + fraction/2 erases through `manager`.
void StageDelta(UpdateManager* manager, size_t base_rows, double fraction,
                uint64_t seed) {
  const size_t half =
      static_cast<size_t>(static_cast<double>(base_rows) * fraction / 2.0);
  Matrix inserts =
      MakeAnalogUpdates("glove-sim", Scale::kTiny, half, seed).value();
  for (size_t i = 0; i < inserts.rows(); ++i) {
    ASSERT_TRUE(
        manager
            ->Insert(std::span<const float>(inserts.Row(i), inserts.cols()))
            .ok());
  }
  Rng rng(seed + 1);
  for (size_t row : rng.SampleWithoutReplacement(base_rows, half)) {
    ASSERT_TRUE(manager->Erase(static_cast<uint32_t>(row)).ok());
  }
}

TEST(UpdateManagerTest, StartPublishesCloneAndArmsIngestion) {
  Fixture f;
  UpdateManager manager = f.MakeManager(UpdateOptions{});
  ASSERT_TRUE(manager.Start(*f.est).ok());
  EXPECT_EQ(f.registry.epoch(), 1u);
  ASSERT_NE(f.registry.Current().estimator, nullptr);
  // The published model is a clone, not the caller's instance.
  EXPECT_NE(f.registry.Current().estimator.get(), f.est.get());
  EXPECT_TRUE(manager.buffer().armed());
}

TEST(UpdateManagerTest, StartRejectsMismatchedEstimator) {
  Fixture f;
  // Trained against a DIFFERENT dataset epoch (one row short).
  f.env.dataset.Truncate(1);
  UpdateManager manager = f.MakeManager(UpdateOptions{});
  EXPECT_FALSE(manager.Start(*f.est).ok());
}

TEST(UpdateManagerTest, RefreshBeforeStartFails) {
  Fixture f;
  UpdateManager manager = f.MakeManager(UpdateOptions{});
  ASSERT_TRUE(manager.Erase(0).ok() == false);  // buffer not armed yet
  EXPECT_FALSE(manager.Refresh().ok());
}

TEST(UpdateManagerTest, RefreshWithoutDeltasIsNoop) {
  Fixture f;
  UpdateManager manager = f.MakeManager(UpdateOptions{});
  ASSERT_TRUE(manager.Start(*f.est).ok());
  auto outcome = manager.Refresh().value();
  EXPECT_FALSE(outcome.refreshed);
  EXPECT_EQ(f.registry.epoch(), 1u);
}

TEST(UpdateManagerTest, IncrementalRefreshPublishesAndImproves) {
  Fixture f;
  const size_t base_rows = f.env.dataset.size();
  UpdateOptions opts;
  opts.allow_full_reseg = false;
  opts.fine_tune_epochs = 3;
  UpdateManager manager = f.MakeManager(opts);
  ASSERT_TRUE(manager.Start(*f.est).ok());
  StageDelta(&manager, base_rows, 0.2, 41);
  const size_t half = manager.pending() / 2;

  auto outcome = manager.Refresh().value();
  EXPECT_TRUE(outcome.refreshed);
  EXPECT_FALSE(outcome.full_reseg);
  EXPECT_EQ(outcome.epoch, 2u);
  EXPECT_EQ(outcome.applied_inserts, half);
  EXPECT_EQ(outcome.applied_erases, half);
  EXPECT_FALSE(outcome.stale_segments.empty());
  EXPECT_EQ(outcome.segments_refreshed + outcome.segments_cloned,
            f.registry.Current().estimator->num_local_models());
  // The authoritative dataset tracked the delta (equal inserts/erases).
  EXPECT_EQ(manager.dataset().size(), base_rows);
  EXPECT_EQ(manager.pending(), 0u);

  // Published segmentation matches the post-apply dataset.
  const auto published = f.registry.Current().estimator;
  EXPECT_EQ(published->segmentation().assignment.size(),
            manager.dataset().size());

  // Exp-11 shape: the refreshed model answers the relabeled workload
  // better than the stale pre-delta weights.
  auto stale = std::make_unique<GlEstimator>(f.est->config());
  ASSERT_TRUE(stale->LoadFromBytes(f.est->SaveToBytes()).ok());
  auto refreshed = std::make_unique<GlEstimator>(f.est->config());
  ASSERT_TRUE(refreshed->LoadFromBytes(published->SaveToBytes()).ok());
  const double stale_q =
      EvaluateSearch(stale.get(), manager.workload()).qerror.mean;
  const double fresh_q =
      EvaluateSearch(refreshed.get(), manager.workload()).qerror.mean;
  EXPECT_LT(fresh_q, stale_q);
}

TEST(UpdateManagerTest, TickHonorsThreshold) {
  Fixture f;
  UpdateOptions opts;
  opts.refresh_delta_threshold = 10;
  opts.allow_full_reseg = false;
  UpdateManager manager = f.MakeManager(opts);
  ASSERT_TRUE(manager.Start(*f.est).ok());

  for (uint32_t row = 0; row < 5; ++row) {
    ASSERT_TRUE(manager.Erase(row).ok());
  }
  EXPECT_FALSE(manager.Tick().value().refreshed);
  EXPECT_EQ(f.registry.epoch(), 1u);

  for (uint32_t row = 5; row < 10; ++row) {
    ASSERT_TRUE(manager.Erase(row).ok());
  }
  auto outcome = manager.Tick().value();
  EXPECT_TRUE(outcome.refreshed);
  EXPECT_EQ(f.registry.epoch(), 2u);
  EXPECT_EQ(outcome.applied_erases, 10u);
}

TEST(UpdateManagerTest, HeavyChurnEscalatesToFullReseg) {
  Fixture f;
  const size_t base_rows = f.env.dataset.size();
  UpdateOptions opts;
  opts.drift.full_reseg_fraction = 0.1;  // low ceiling to force the path
  opts.allow_full_reseg = true;
  UpdateManager manager = f.MakeManager(opts);
  ASSERT_TRUE(manager.Start(*f.est).ok());
  StageDelta(&manager, base_rows, 0.2, 43);

  auto outcome = manager.Refresh().value();
  EXPECT_TRUE(outcome.refreshed);
  EXPECT_TRUE(outcome.full_reseg);
  EXPECT_EQ(outcome.epoch, 2u);
  const auto published = f.registry.Current().estimator;
  EXPECT_EQ(published->segmentation().assignment.size(),
            manager.dataset().size());
  EXPECT_EQ(outcome.segments_refreshed, published->num_local_models());
  // Default reseg options keep the served model's segment count instead of
  // silently re-partitioning to SegmentationOptions' own default.
  EXPECT_EQ(published->num_local_models(), f.est->num_local_models());
  // Buffer re-armed against the re-segmented epoch.
  EXPECT_TRUE(manager.buffer().armed());
  EXPECT_EQ(manager.buffer().base_rows(), manager.dataset().size());
}

TEST(UpdateManagerTest, FullResegDisabledStaysIncremental) {
  Fixture f;
  const size_t base_rows = f.env.dataset.size();
  UpdateOptions opts;
  opts.drift.full_reseg_fraction = 0.1;
  opts.allow_full_reseg = false;
  UpdateManager manager = f.MakeManager(opts);
  ASSERT_TRUE(manager.Start(*f.est).ok());
  StageDelta(&manager, base_rows, 0.2, 47);
  auto outcome = manager.Refresh().value();
  EXPECT_TRUE(outcome.refreshed);
  EXPECT_FALSE(outcome.full_reseg);
}

TEST(UpdateManagerTest, RefreshIsDeterministic) {
  auto run = [](std::vector<uint8_t>* bytes) {
    Fixture f(/*seed=*/53);
    const size_t base_rows = f.env.dataset.size();
    UpdateOptions opts;
    opts.allow_full_reseg = false;
    opts.seed = 777;
    UpdateManager manager = f.MakeManager(opts);
    ASSERT_TRUE(manager.Start(*f.est).ok());
    StageDelta(&manager, base_rows, 0.1, 59);
    ASSERT_TRUE(manager.Refresh().ok());
    *bytes = f.registry.Current().estimator->SaveToBytes();
  };
  std::vector<uint8_t> first;
  std::vector<uint8_t> second;
  run(&first);
  run(&second);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace update
}  // namespace simcard
