// Delta ingestion: nearest-centroid routing, epoch discipline across
// Drain/Rearm, and translation of mid-refresh deltas through the
// compaction remap.
#include <gtest/gtest.h>

#include <vector>

#include "cluster/segmentation.h"
#include "data/delta_overlay.h"
#include "data/generators.h"
#include "update/delta_buffer.h"

namespace simcard {
namespace update {
namespace {

struct Fixture {
  Dataset dataset;
  Segmentation seg;

  Fixture() {
    dataset = MakeAnalogDataset("glove-sim", Scale::kTiny, 11).value();
    SegmentationOptions opts;
    opts.target_segments = 6;
    opts.seed = 12;
    seg = SegmentData(dataset, opts).value();
  }

  void Arm(DeltaBuffer* buffer) const {
    buffer->Rearm(seg, dataset.size(), dataset.dim(), dataset.metric());
  }

  std::vector<float> Centroid(size_t s) const {
    const float* c = seg.centroids.Row(s);
    return std::vector<float>(c, c + dataset.dim());
  }
};

TEST(DeltaBufferTest, UnarmedRejectsIngestion) {
  DeltaBuffer buffer;
  std::vector<float> point(16, 0.0f);
  EXPECT_FALSE(buffer.armed());
  EXPECT_FALSE(buffer.Insert(point).ok());
  EXPECT_FALSE(buffer.Erase(0).ok());
}

TEST(DeltaBufferTest, RoutesInsertToNearestCentroid) {
  Fixture f;
  DeltaBuffer buffer;
  f.Arm(&buffer);
  // A point sitting exactly on a centroid must route to that segment.
  for (size_t s = 0; s < f.seg.num_segments(); ++s) {
    ASSERT_TRUE(buffer.Insert(f.Centroid(s)).ok());
  }
  const auto per_segment = buffer.PerSegmentDeltas();
  ASSERT_EQ(per_segment.size(), f.seg.num_segments());
  for (size_t s = 0; s < per_segment.size(); ++s) {
    EXPECT_EQ(per_segment[s], 1u) << "segment " << s;
  }
  EXPECT_EQ(buffer.pending(), f.seg.num_segments());
}

TEST(DeltaBufferTest, EraseChargedToOwningSegment) {
  Fixture f;
  DeltaBuffer buffer;
  f.Arm(&buffer);
  const uint32_t row = 42;
  ASSERT_TRUE(buffer.Erase(row).ok());
  const auto per_segment = buffer.PerSegmentDeltas();
  EXPECT_EQ(per_segment[f.seg.assignment[row]], 1u);
  EXPECT_EQ(buffer.pending(), 1u);
}

TEST(DeltaBufferTest, RejectsMalformedDeltas) {
  Fixture f;
  DeltaBuffer buffer;
  f.Arm(&buffer);
  // Wrong dimensionality.
  EXPECT_FALSE(buffer.Insert(std::vector<float>(3, 0.0f)).ok());
  // Out-of-range and duplicate erases.
  EXPECT_FALSE(
      buffer.Erase(static_cast<uint32_t>(f.dataset.size())).ok());
  ASSERT_TRUE(buffer.Erase(7).ok());
  EXPECT_FALSE(buffer.Erase(7).ok());
}

TEST(DeltaBufferTest, DrainKeepsIngestionOpen) {
  Fixture f;
  DeltaBuffer buffer;
  f.Arm(&buffer);
  ASSERT_TRUE(buffer.Insert(f.Centroid(0)).ok());
  ASSERT_TRUE(buffer.Erase(3).ok());

  DeltaSnapshot snap = buffer.Drain();
  EXPECT_EQ(snap.overlay.num_inserts(), 1u);
  EXPECT_EQ(snap.overlay.num_erases(), 1u);
  ASSERT_EQ(snap.insert_segments.size(), 1u);
  EXPECT_EQ(snap.insert_segments[0], 0u);

  // Still armed against the same epoch; new deltas keep flowing while the
  // refresh works off the snapshot.
  EXPECT_TRUE(buffer.armed());
  EXPECT_EQ(buffer.pending(), 0u);
  EXPECT_TRUE(buffer.Erase(3).ok());  // new overlay: not a duplicate
  EXPECT_EQ(buffer.pending(), 1u);
}

TEST(DeltaBufferTest, RearmAfterRefreshTranslatesCarriedDeltas) {
  Fixture f;
  DeltaBuffer buffer;
  f.Arm(&buffer);

  // The refresh drains {erase 10}.
  ASSERT_TRUE(buffer.Erase(10).ok());
  DeltaSnapshot snap = buffer.Drain();

  // Mid-refresh, three more deltas arrive against the OLD epoch: an erase
  // of a row the refresh is about to remove (must be dropped), an erase of
  // a surviving row (must be shifted down by the compaction), and an
  // insert (must be carried over and re-routed).
  ASSERT_TRUE(buffer.Erase(10).ok());
  ASSERT_TRUE(buffer.Erase(20).ok());
  ASSERT_TRUE(buffer.Insert(f.Centroid(1)).ok());

  // Apply the snapshot the way a refresh would.
  auto app = snap.overlay.ApplyTo(&f.dataset).value();
  SegmentationOptions opts;
  opts.target_segments = 6;
  opts.seed = 13;
  Segmentation seg2 = SegmentData(f.dataset, opts).value();
  buffer.RearmAfterRefresh(seg2, f.dataset.size(), f.dataset.dim(),
                           f.dataset.metric(), app.remap);

  EXPECT_EQ(buffer.dropped_erases(), 1u);
  EXPECT_EQ(buffer.pending(), 2u);  // erase 20 -> 19, plus the insert
  DeltaSnapshot carried = buffer.Drain();
  EXPECT_EQ(carried.overlay.num_inserts(), 1u);
  const std::vector<uint32_t> erases = carried.overlay.SortedErases();
  ASSERT_EQ(erases.size(), 1u);
  EXPECT_EQ(erases[0], 19u);  // row 20, shifted down past erased row 10
}

TEST(DeltaBufferTest, RearmDiscardsStagedDeltas) {
  Fixture f;
  DeltaBuffer buffer;
  f.Arm(&buffer);
  ASSERT_TRUE(buffer.Erase(0).ok());
  ASSERT_TRUE(buffer.Insert(f.Centroid(0)).ok());
  f.Arm(&buffer);  // full re-arm, e.g. after a retrain from scratch
  EXPECT_EQ(buffer.pending(), 0u);
  EXPECT_EQ(buffer.dropped_erases(), 0u);
}

}  // namespace
}  // namespace update
}  // namespace simcard
