// Observed-accuracy drift gating end to end: the serving layer's Q-error
// windows (fed by ReportActual) drive DriftMonitor staleness and
// UpdateManager refreshes even when NO deltas are pending — query drift
// triggers repair the same way data drift does.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "eval/harness.h"
#include "obs/qerror_tracker.h"
#include "serve/model_registry.h"
#include "update/drift_monitor.h"
#include "update/update_manager.h"

namespace simcard {
namespace update {
namespace {

GlEstimatorConfig FastConfig() {
  GlEstimatorConfig config = GlEstimatorConfig::GlCnn();
  config.local_train.epochs = 8;
  config.global_train.epochs = 8;
  config.tuner.max_trials = 2;
  config.tuner.trial_epochs = 3;
  config.tune_per_segment = false;
  return config;
}

struct Fixture {
  ExperimentEnv env;
  std::unique_ptr<GlEstimator> est;
  serve::ModelRegistry registry;

  explicit Fixture(uint64_t seed = 47) {
    EnvOptions opts;
    opts.num_segments = 6;
    opts.seed = seed;
    env = std::move(
        BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
    est = std::make_unique<GlEstimator>(FastConfig());
    TrainContext ctx = MakeTrainContext(env);
    EXPECT_TRUE(est->Train(ctx).ok());
  }

  UpdateManager MakeManager(UpdateOptions opts) {
    return UpdateManager(std::move(env.dataset), std::move(env.workload),
                         &registry, opts);
  }
};

// Feeds `reports` degraded (q-error = 20x) observations for `segment`.
void DegradeSegment(obs::QErrorTracker* tracker, uint32_t segment,
                    size_t reports) {
  const std::vector<uint32_t> segs = {segment};
  for (size_t i = 0; i < reports; ++i) {
    tracker->Record(200.0, 10.0, 0.3f, std::span<const uint32_t>(segs));
  }
}

TEST(ObservedDriftTest, MonitorFlagsDegradedSegmentsWithoutDeltas) {
  Fixture f;
  DriftThresholds thresholds;
  thresholds.stale_observed_qerror = 4.0;
  thresholds.min_observed_reports = 8;
  DriftMonitor monitor(thresholds);

  obs::QErrorTracker tracker;
  DegradeSegment(&tracker, /*segment=*/2, /*reports=*/12);
  // Segment 4 is accurate: q-error 1.
  const std::vector<uint32_t> seg4 = {4};
  for (int i = 0; i < 12; ++i) {
    tracker.Record(10.0, 10.0, 0.3f, std::span<const uint32_t>(seg4));
  }
  const std::vector<obs::ObservedSegmentAccuracy> observed =
      tracker.PerSegment();

  const Segmentation& seg = f.est->segmentation();
  DeltaSnapshot empty_snap;  // zero pending deltas
  const DriftReport report =
      monitor.Assess(seg, f.env.dataset, empty_snap, observed);

  // Only the degraded segment is stale, via a deltas-free row.
  ASSERT_EQ(report.stale_segments.size(), 1u);
  EXPECT_EQ(report.stale_segments[0], 2u);
  bool found = false;
  for (const SegmentDrift& d : report.segments) {
    if (d.segment != 2) continue;
    found = true;
    EXPECT_TRUE(d.stale);
    EXPECT_EQ(d.inserts, 0u);
    EXPECT_EQ(d.erases, 0u);
    EXPECT_GE(d.observed_qerror, thresholds.stale_observed_qerror);
  }
  EXPECT_TRUE(found);
  EXPECT_FALSE(report.escalate_full_reseg);
}

TEST(ObservedDriftTest, UnderReportedWindowsAreNotTrusted) {
  Fixture f;
  DriftThresholds thresholds;
  thresholds.stale_observed_qerror = 4.0;
  thresholds.min_observed_reports = 16;
  DriftMonitor monitor(thresholds);

  obs::QErrorTracker tracker;
  DegradeSegment(&tracker, 2, /*reports=*/8);  // below min_observed_reports

  const std::vector<obs::ObservedSegmentAccuracy> observed =
      tracker.PerSegment();
  const DriftReport report = monitor.Assess(f.est->segmentation(),
                                            f.env.dataset, DeltaSnapshot{},
                                            observed);
  EXPECT_TRUE(report.stale_segments.empty());
}

TEST(ObservedDriftTest, ThresholdZeroDisablesTheInput) {
  Fixture f;
  DriftMonitor monitor;  // stale_observed_qerror defaults to 0 = off
  obs::QErrorTracker tracker;
  DegradeSegment(&tracker, 2, 32);
  const std::vector<obs::ObservedSegmentAccuracy> observed =
      tracker.PerSegment();
  const DriftReport report = monitor.Assess(f.est->segmentation(),
                                            f.env.dataset, DeltaSnapshot{},
                                            observed);
  EXPECT_TRUE(report.stale_segments.empty());
}

// The acceptance path: degraded observed accuracy, ZERO pending deltas, and
// Tick() still refreshes — fine-tuning the flagged segment and publishing a
// new epoch.
TEST(ObservedDriftTest, TickRefreshesOnAccuracyAloneWithZeroDeltas) {
  Fixture f;
  UpdateOptions opts;
  opts.allow_full_reseg = false;
  opts.fine_tune_epochs = 2;
  opts.refresh_delta_threshold = 1000000;  // delta trigger effectively off
  opts.drift.stale_observed_qerror = 4.0;
  opts.drift.min_observed_reports = 8;
  UpdateManager manager = f.MakeManager(opts);
  ASSERT_TRUE(manager.Start(*f.est).ok());
  ASSERT_EQ(f.registry.epoch(), 1u);

  // Healthy accuracy: not due, nothing published.
  obs::QErrorTracker tracker;
  manager.SetAccuracySource(&tracker);
  const std::vector<uint32_t> seg1 = {1};
  for (int i = 0; i < 12; ++i) {
    tracker.Record(10.0, 10.0, 0.3f, std::span<const uint32_t>(seg1));
  }
  auto idle = manager.Tick().value();
  EXPECT_FALSE(idle.refreshed);
  EXPECT_EQ(f.registry.epoch(), 1u);

  // Degrade one segment's observed accuracy. No Insert/Erase anywhere.
  DegradeSegment(&tracker, /*segment=*/3, /*reports=*/12);
  ASSERT_EQ(manager.pending(), 0u);

  auto outcome = manager.Tick().value();
  EXPECT_TRUE(outcome.refreshed);
  EXPECT_FALSE(outcome.full_reseg);
  EXPECT_EQ(outcome.applied_inserts, 0u);
  EXPECT_EQ(outcome.applied_erases, 0u);
  ASSERT_EQ(outcome.stale_segments.size(), 1u);
  EXPECT_EQ(outcome.stale_segments[0], 3u);
  EXPECT_EQ(outcome.segments_refreshed, 1u);
  EXPECT_EQ(outcome.epoch, 2u);
  EXPECT_EQ(f.registry.epoch(), 2u);

  // Disconnecting the source stops further accuracy-driven refreshes.
  manager.SetAccuracySource(nullptr);
  auto after = manager.Tick().value();
  EXPECT_FALSE(after.refreshed);
  EXPECT_EQ(f.registry.epoch(), 2u);
}

}  // namespace
}  // namespace update
}  // namespace simcard
