// End-to-end check of the "simcard.metrics.v1" run report: train a tiny GL
// estimator with metrics on, evaluate it, and assert the exported JSON
// carries the documented sections — per-query latency quantiles, the
// segment-pruning counters, and per-epoch training-loss series.
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/gl_estimator.h"
#include "eval/harness.h"
#include "obs/metrics.h"
#include "support/request_helpers.h"

namespace simcard {
namespace {

const ExperimentEnv& SharedEnv() {
  static const ExperimentEnv* env = [] {
    EnvOptions opts;
    opts.num_segments = 6;
    return new ExperimentEnv(std::move(
        BuildEnvironment("glove-sim", Scale::kTiny, opts).value()));
  }();
  return *env;
}

// Trained once with metrics enabled so the registry holds full training
// series; every test in this binary shares it.
GlEstimator& SharedEstimator() {
  static GlEstimator* est = [] {
    obs::SetMetricsEnabled(true);
    GlEstimatorConfig config = GlEstimatorConfig::GlCnn();
    config.local_train.epochs = 15;
    config.global_train.epochs = 15;
    config.tune_per_segment = false;
    auto* e = new GlEstimator(std::move(config));
    TrainContext ctx = MakeTrainContext(SharedEnv());
    Status st = e->Train(ctx);
    EXPECT_TRUE(st.ok()) << st.ToString();
    return e;
  }();
  return *est;
}

TEST(ReportSchemaTest, ReportCarriesDocumentedSections) {
  obs::SetMetricsEnabled(true);
  GlEstimator& est = SharedEstimator();
  EvaluateSearch(&est, SharedEnv().workload);

  const obs::JsonValue root = obs::MetricsRegistry::Default().ToJson();
  EXPECT_EQ(root.Get("schema").string_value(), "simcard.metrics.v1");
  EXPECT_TRUE(root.Get("meta").Get("metrics_enabled").bool_value());

  // Segment-pruning accounting from GlEstimator::Estimate.
  const obs::JsonValue& counters = root.Get("counters");
  ASSERT_TRUE(counters.Has("gl.queries"));
  ASSERT_TRUE(counters.Has("gl.segments_evaluated"));
  ASSERT_TRUE(counters.Has("gl.segments_pruned"));
  EXPECT_GT(counters.Get("gl.queries").number_value(), 0.0);
  EXPECT_GT(counters.Get("gl.segments_evaluated").number_value(), 0.0);
  EXPECT_GE(counters.Get("gl.segments_pruned").number_value(), 0.0);

  // Per-query latency histograms with quantiles, from the estimator's
  // phase breakdown and from the evaluation harness.
  for (const char* name : {"gl.latency.total_us", "gl.latency.locals_us",
                           "eval.query_latency_us"}) {
    SCOPED_TRACE(name);
    const obs::JsonValue& hist = root.Get("histograms").Get(name);
    ASSERT_TRUE(hist.is_object());
    EXPECT_GT(hist.Get("count").number_value(), 0.0);
    for (const char* field : {"sum", "mean", "min", "max", "p50", "p90",
                              "p95", "p99"}) {
      EXPECT_TRUE(hist.Has(field)) << field;
    }
    EXPECT_LE(hist.Get("p50").number_value(),
              hist.Get("p99").number_value() + 1e-9);
    const obs::JsonValue& buckets = hist.Get("buckets");
    ASSERT_TRUE(buckets.is_array());
    ASSERT_GT(buckets.size(), 0u);
    EXPECT_TRUE(buckets.at(0).Has("le"));
    EXPECT_TRUE(buckets.at(0).Has("count"));
  }

  // Per-epoch training-loss series from the TrainingObserver hook: the
  // global model plus at least one local model.
  const obs::JsonValue& series = root.Get("series");
  ASSERT_TRUE(series.Has("train.global.loss"));
  EXPECT_GE(series.Get("train.global.loss").size(), 1u);
  bool has_local_series = false;
  for (const auto& [name, points] : series.members()) {
    if (name.rfind("train.local.", 0) == 0 && points.size() > 0) {
      has_local_series = true;
      ASSERT_EQ(points.at(0).size(), 2u);  // [epoch, loss] pairs
    }
  }
  EXPECT_TRUE(has_local_series);

  EXPECT_GT(root.Get("gauges").Get("gl.train_seconds").number_value(), 0.0);
}

TEST(ReportSchemaTest, DumpedFileParsesBack) {
  obs::SetMetricsEnabled(true);
  SharedEstimator();  // make sure the registry is populated
  const std::string path = ::testing::TempDir() + "simcard_report_test.json";
  Status st = obs::DumpMetricsJson(path);
  ASSERT_TRUE(st.ok()) << st.ToString();

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  auto parsed = obs::JsonValue::Parse(buf.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().Get("schema").string_value(),
            "simcard.metrics.v1");
  EXPECT_TRUE(parsed.value().Get("histograms").is_object());
}

TEST(ReportSchemaTest, DisabledMetricsRecordNothing) {
  GlEstimator& est = SharedEstimator();
  obs::SetMetricsEnabled(false);
  obs::Counter* queries = obs::GetCounter("gl.queries");
  const int64_t before = queries->Value();
  const float* q = SharedEnv().workload.test_queries.Row(0);
  for (int i = 0; i < 5; ++i) {
    testsupport::EstimateCard(est, q, 0.2f + 0.05f * i);
  }
  EXPECT_EQ(queries->Value(), before);
  obs::SetMetricsEnabled(true);
  testsupport::EstimateCard(est, q, 0.3f);
  EXPECT_EQ(queries->Value(), before + 1);
}

}  // namespace
}  // namespace simcard
