// Pins the disabled-telemetry fast path as an invariant: with metrics and
// tracing off, ScopedTimer, TraceSpan, TraceScope, and TraceContext must
// make zero clock reads and zero heap allocations. The clock side uses the
// obs/clock.h per-thread read counter; the allocation side uses a
// thread-local counting operator new override local to this test binary
// (each *_test.cc is its own executable).
#include <cstdint>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/request_trace.h"
#include "obs/trace.h"

namespace {
thread_local uint64_t g_thread_allocs = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_thread_allocs;
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace simcard {
namespace obs {
namespace {

class FastPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetMetricsEnabled(false);
    SetTracingEnabled(false);
  }
  void TearDown() override {
    SetMetricsEnabled(false);
    SetTracingEnabled(false);
  }

  // Runs `body` and returns {clock reads, allocations} it performed on this
  // thread.
  template <typename Fn>
  static std::pair<uint64_t, uint64_t> Measure(Fn&& body) {
    const uint64_t clock_before = internal::ClockReadsThisThread();
    const uint64_t alloc_before = g_thread_allocs;
    body();
    return {internal::ClockReadsThisThread() - clock_before,
            g_thread_allocs - alloc_before};
  }
};

TEST_F(FastPathTest, DisabledScopedTimerTouchesNothing) {
  // Histogram lookup allocates; do it outside the measured region, as the
  // instrumentation sites do (they hold a pre-resolved pointer).
  SetMetricsEnabled(true);
  Histogram* hist = GetHistogram("fastpath.test_us");
  SetMetricsEnabled(false);

  const auto [clock_reads, allocs] = Measure([&] {
    for (int i = 0; i < 100; ++i) {
      ScopedTimer timer(hist);
    }
  });
  EXPECT_EQ(clock_reads, 0u);
  EXPECT_EQ(allocs, 0u);
}

TEST_F(FastPathTest, DisabledTraceSpanTouchesNothing) {
  const auto [clock_reads, allocs] = Measure([] {
    for (int i = 0; i < 100; ++i) {
      TraceSpan span("fastpath.span");
    }
  });
  EXPECT_EQ(clock_reads, 0u);
  EXPECT_EQ(allocs, 0u);
}

TEST_F(FastPathTest, DisabledTraceContextTouchesNothing) {
  const auto [clock_reads, allocs] = Measure([] {
    for (int i = 0; i < 100; ++i) {
      TraceContext ctx;
      ctx.Start("serve.request");
      ctx.AddFlag(kTraceShed);
      ctx.RecordInstant("serve.shed");
      TraceScope scope(&ctx, "serve.eval");
      ctx.Finish();
    }
  });
  EXPECT_EQ(clock_reads, 0u);
  EXPECT_EQ(allocs, 0u);
}

TEST_F(FastPathTest, CountersActuallyObserveTheEnabledPath) {
  // Sanity-check the probes: enabled, the same bodies must read the clock.
  SetMetricsEnabled(true);
  SetTracingEnabled(true);
  Histogram* hist = GetHistogram("fastpath.enabled_us");

  auto [timer_reads, timer_allocs] = Measure([&] { ScopedTimer timer(hist); });
  EXPECT_GE(timer_reads, 2u);  // entry + exit
  (void)timer_allocs;

  // First trace on this thread may allocate its sink lazily; warm it up
  // outside the measured region.
  {
    TraceContext warm;
    warm.Start("serve.request");
    warm.Finish();
  }
  auto [ctx_reads, ctx_allocs] = Measure([] {
    TraceContext ctx;
    ctx.Start("serve.request");
    ctx.RecordInstant("serve.shed");
    ctx.Finish();
  });
  EXPECT_GE(ctx_reads, 2u);  // start + instant (+ finish)
  // Warmed up, the publish path itself is allocation-free too.
  EXPECT_EQ(ctx_allocs, 0u);
}

}  // namespace
}  // namespace obs
}  // namespace simcard
