// Unit tests for the telemetry exporter: snapshot document shape,
// Prometheus text exposition, file rotation, DumpNow without Start, and the
// background thread lifecycle.
#include "obs/telemetry.h"

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/qerror_tracker.h"
#include "obs/segment_health.h"

namespace simcard {
namespace obs {
namespace {

namespace fs = std::filesystem;

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetMetricsEnabled(true);
    MetricsRegistry::Default().ResetForTesting();
    SegmentHealthRegistry::Default().ResetForTesting();
    dir_ = fs::path(::testing::TempDir()) /
           ("telemetry_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fs::remove_all(dir_);
    MetricsRegistry::Default().ResetForTesting();
    SegmentHealthRegistry::Default().ResetForTesting();
    SetMetricsEnabled(false);
  }

  TelemetryOptions OptionsHere() {
    TelemetryOptions topts;
    topts.dir = dir_.string();
    topts.basename = "snap";
    return topts;
  }

  static std::string Slurp(const fs::path& path) {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  fs::path dir_;
};

TEST_F(TelemetryTest, SnapshotJsonCarriesEverySection) {
  GetCounter("serve.requests_total")->Add(3);
  SegmentHealthRegistry::Default().RecordEval(2, /*used_fallback=*/true);

  QErrorTracker accuracy;
  accuracy.Record(20.0, 10.0, 0.25f);

  TelemetryExporter exporter(OptionsHere(), &accuracy);
  const std::string json = exporter.SnapshotJson().Dump(2);

  EXPECT_NE(json.find("\"simcard.telemetry.v1\""), std::string::npos);
  for (const char* key :
       {"\"meta\"", "\"timestamp_utc\"", "\"seq\"", "\"interval_ms\"",
        "\"metrics\"", "\"simcard.metrics.v1\"", "\"segment_health\"",
        "\"accuracy\"", "\"total_reports\"", "\"by_tau\"", "\"by_segment\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  EXPECT_NE(json.find("serve.requests_total"), std::string::npos);
}

TEST_F(TelemetryTest, NullAccuracyYieldsEmptyAccuracySection) {
  TelemetryExporter exporter(OptionsHere());
  const std::string json = exporter.SnapshotJson().Dump(2);
  EXPECT_NE(json.find("\"accuracy\""), std::string::npos);
  EXPECT_EQ(json.find("\"total_reports\""), std::string::npos);
}

TEST_F(TelemetryTest, DumpNowWritesFilesWithoutStart) {
  GetCounter("serve.requests_total")->Increment();
  TelemetryExporter exporter(OptionsHere());
  ASSERT_TRUE(exporter.DumpNow().ok());

  EXPECT_TRUE(fs::exists(dir_ / "snap-0.json"));
  EXPECT_TRUE(fs::exists(dir_ / "snap-latest.json"));
  EXPECT_TRUE(fs::exists(dir_ / "snap.prom"));
  EXPECT_EQ(exporter.snapshots_written(), 1u);
  EXPECT_FALSE(exporter.running());

  const std::string latest = Slurp(dir_ / "snap-latest.json");
  EXPECT_NE(latest.find("simcard.telemetry.v1"), std::string::npos);
}

TEST_F(TelemetryTest, RotationDeletesOldestBeyondMaxSnapshots) {
  TelemetryOptions topts = OptionsHere();
  topts.max_snapshots = 2;
  TelemetryExporter exporter(topts);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(exporter.DumpNow().ok());

  EXPECT_FALSE(fs::exists(dir_ / "snap-0.json"));
  EXPECT_FALSE(fs::exists(dir_ / "snap-1.json"));
  EXPECT_TRUE(fs::exists(dir_ / "snap-2.json"));
  EXPECT_TRUE(fs::exists(dir_ / "snap-3.json"));
  EXPECT_TRUE(fs::exists(dir_ / "snap-latest.json"));
  EXPECT_EQ(exporter.snapshots_written(), 4u);
}

TEST_F(TelemetryTest, PrometheusTextExposesMetricsHealthAndAccuracy) {
  GetCounter("serve.requests_total")->Add(7);
  SegmentHealthRegistry::Default().RecordEval(1, /*used_fallback=*/false);
  SegmentHealthRegistry::Default().SetBreakerState(1, BreakerHealth::kOpen);
  QErrorTracker accuracy;
  accuracy.Record(30.0, 10.0, 0.25f);

  TelemetryExporter exporter(OptionsHere(), &accuracy);
  const std::string prom = exporter.PrometheusText();

  // Exposition format: TYPE comments, sanitized metric names, labels.
  EXPECT_NE(prom.find("# TYPE"), std::string::npos);
  EXPECT_NE(prom.find("serve_requests_total 7"), std::string::npos);
  EXPECT_NE(prom.find("segment=\"1\""), std::string::npos);
  EXPECT_NE(prom.find("simcard_segment_evals"), std::string::npos);
  EXPECT_NE(prom.find("simcard_accuracy_qerror{quantile=\"0.5\"}"),
            std::string::npos);
  // Text exposition ends with a newline (scrapers require it).
  ASSERT_FALSE(prom.empty());
  EXPECT_EQ(prom.back(), '\n');
}

TEST_F(TelemetryTest, BackgroundThreadWritesAndStops) {
  TelemetryOptions topts = OptionsHere();
  topts.interval_ms = 5.0;
  TelemetryExporter exporter(topts);
  ASSERT_TRUE(exporter.Start().ok());
  EXPECT_TRUE(exporter.running());
  EXPECT_FALSE(exporter.Start().ok());  // double-start refused

  // Wait (bounded) for at least two periodic snapshots.
  for (int i = 0; i < 400 && exporter.snapshots_written() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  exporter.Stop();
  EXPECT_FALSE(exporter.running());
  EXPECT_GE(exporter.snapshots_written(), 2u);
  EXPECT_TRUE(fs::exists(dir_ / "snap-latest.json"));

  const uint64_t after_stop = exporter.snapshots_written();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(exporter.snapshots_written(), after_stop);
  exporter.Stop();  // idempotent
}

TEST_F(TelemetryTest, MissingDirectoryIsAnError) {
  TelemetryOptions topts;
  topts.dir = (dir_ / "does" / "not" / "exist").string();
  TelemetryExporter exporter(topts);
  EXPECT_FALSE(exporter.DumpNow().ok());
}

}  // namespace
}  // namespace obs
}  // namespace simcard
