// Unit tests for the per-segment health rollup: touched-only snapshots,
// the eval/fallback counters, breaker/quarantine/drift/backlog fields, and
// the JSON array shape embedded in telemetry snapshots.
#include "obs/segment_health.h"

#include <string>

#include <gtest/gtest.h>

namespace simcard {
namespace obs {
namespace {

class SegmentHealthTest : public ::testing::Test {
 protected:
  void SetUp() override { SegmentHealthRegistry::Default().ResetForTesting(); }
  void TearDown() override {
    SegmentHealthRegistry::Default().ResetForTesting();
  }
};

TEST_F(SegmentHealthTest, SnapshotReportsOnlyTouchedSegments) {
  auto& health = SegmentHealthRegistry::Default();
  EXPECT_TRUE(health.Snapshot().empty());

  health.RecordEval(3, /*used_fallback=*/false);
  health.RecordEval(7, /*used_fallback=*/true);

  const std::vector<SegmentHealth> snap = health.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].segment, 3u);
  EXPECT_EQ(snap[0].evals, 1u);
  EXPECT_EQ(snap[0].fallbacks, 0u);
  EXPECT_EQ(snap[1].segment, 7u);
  EXPECT_EQ(snap[1].fallbacks, 1u);
  EXPECT_DOUBLE_EQ(snap[1].fallback_rate(), 1.0);
}

TEST_F(SegmentHealthTest, BreakerAndTripAccounting) {
  auto& health = SegmentHealthRegistry::Default();
  health.SetBreakerState(2, BreakerHealth::kOpen);
  health.RecordBreakerTrip(2);
  health.RecordBreakerTrip(2);

  std::vector<SegmentHealth> snap = health.Snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].breaker, BreakerHealth::kOpen);
  EXPECT_EQ(snap[0].breaker_trips, 2u);

  health.SetBreakerState(2, BreakerHealth::kHalfOpen);
  EXPECT_EQ(health.Snapshot()[0].breaker, BreakerHealth::kHalfOpen);
  health.SetBreakerState(2, BreakerHealth::kClosed);
  EXPECT_EQ(health.Snapshot()[0].breaker, BreakerHealth::kClosed);
  // Trips persist across state transitions.
  EXPECT_EQ(health.Snapshot()[0].breaker_trips, 2u);
}

TEST_F(SegmentHealthTest, DriftQuarantineAndBacklogFields) {
  auto& health = SegmentHealthRegistry::Default();
  health.SetQuarantined(1, true);
  health.SetDriftScore(1, 0.125, 0.5, /*stale=*/true);
  health.SetDeltaBacklog(1, 42);

  const SegmentHealth h = health.Snapshot()[0];
  EXPECT_TRUE(h.quarantined);
  EXPECT_DOUBLE_EQ(h.drift_delta_fraction, 0.125);
  EXPECT_DOUBLE_EQ(h.drift_centroid_shift, 0.5);
  EXPECT_TRUE(h.drift_stale);
  EXPECT_EQ(h.delta_backlog, 42u);

  health.SetQuarantined(1, false);
  health.SetDeltaBacklog(1, 0);
  EXPECT_FALSE(health.Snapshot()[0].quarantined);
  EXPECT_EQ(health.Snapshot()[0].delta_backlog, 0u);
}

TEST_F(SegmentHealthTest, OutOfRangeSegmentsAreDropped) {
  auto& health = SegmentHealthRegistry::Default();
  health.RecordEval(SegmentHealthRegistry::kMaxSegments, false);
  health.RecordEval(SegmentHealthRegistry::kMaxSegments + 100, true);
  EXPECT_TRUE(health.Snapshot().empty());
}

TEST_F(SegmentHealthTest, JsonRowsCarryEveryField) {
  auto& health = SegmentHealthRegistry::Default();
  health.RecordEval(0, true);
  health.SetBreakerState(0, BreakerHealth::kOpen);

  const std::string json = health.ToJson().Dump();
  for (const char* field :
       {"\"segment\"", "\"evals\"", "\"fallbacks\"", "\"fallback_rate\"",
        "\"breaker_state\"", "\"breaker_trips\"", "\"quarantined\"",
        "\"drift_delta_fraction\"", "\"drift_centroid_shift\"",
        "\"drift_stale\"", "\"delta_backlog\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
  EXPECT_NE(json.find("\"open\""), std::string::npos);
}

TEST_F(SegmentHealthTest, ResetClearsTouchedMarks) {
  auto& health = SegmentHealthRegistry::Default();
  health.RecordEval(5, false);
  ASSERT_EQ(health.Snapshot().size(), 1u);
  health.ResetForTesting();
  EXPECT_TRUE(health.Snapshot().empty());
}

}  // namespace
}  // namespace obs
}  // namespace simcard
