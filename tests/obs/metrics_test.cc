// Unit tests for counters, gauges, histograms, time series, the registry,
// and the RAII timers.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "obs/trace.h"

namespace simcard {
namespace obs {
namespace {

// Restores the process-wide enablement flag on scope exit so tests cannot
// leak state into each other.
class ScopedMetricsEnabled {
 public:
  explicit ScopedMetricsEnabled(bool enabled) : saved_(MetricsEnabled()) {
    SetMetricsEnabled(enabled);
  }
  ~ScopedMetricsEnabled() { SetMetricsEnabled(saved_); }

 private:
  bool saved_;
};

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42);
  c.Reset();
  EXPECT_EQ(c.Value(), 0);
}

TEST(CounterTest, AtomicUnderThreadPool) {
  Counter c;
  Histogram h(Histogram::LinearBuckets(0.0, 1.0, 8));
  constexpr int kTasks = 8;
  constexpr int kPerTask = 10000;
  ThreadPool pool(4);
  for (int t = 0; t < kTasks; ++t) {
    pool.Submit([&c, &h] {
      for (int i = 0; i < kPerTask; ++i) {
        c.Increment();
        h.Record(static_cast<double>(i % 8));
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(c.Value(), kTasks * kPerTask);
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kTasks * kPerTask));
  uint64_t bucket_total = 0;
  for (uint64_t b : h.BucketCounts()) bucket_total += b;
  EXPECT_EQ(bucket_total, h.Count());
}

TEST(GaugeTest, SetAndReset) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
}

TEST(HistogramTest, BucketBoundariesAreUpperInclusive) {
  Histogram h({1.0, 2.0, 4.0});
  // Bucket i covers (b{i-1}, b{i}]; a sample exactly on a bound lands in
  // that bound's bucket, one past it spills into the next.
  h.Record(1.0);   // bucket 0: (-inf, 1]
  h.Record(1.01);  // bucket 1: (1, 2]
  h.Record(2.0);   // bucket 1
  h.Record(4.0);   // bucket 2: (2, 4]
  h.Record(4.01);  // bucket 3: overflow (4, inf)
  const auto counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);  // bounds + overflow
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(HistogramTest, BoundsAreSortedAndDeduplicated) {
  Histogram h({4.0, 1.0, 2.0, 2.0});
  ASSERT_EQ(h.bounds().size(), 3u);
  EXPECT_DOUBLE_EQ(h.bounds()[0], 1.0);
  EXPECT_DOUBLE_EQ(h.bounds()[1], 2.0);
  EXPECT_DOUBLE_EQ(h.bounds()[2], 4.0);
  EXPECT_EQ(h.BucketCounts().size(), 4u);
}

TEST(HistogramTest, SummaryStatistics) {
  Histogram h(Histogram::LinearBuckets(10.0, 10.0, 10));
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
  for (int v = 1; v <= 100; ++v) h.Record(v);
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_DOUBLE_EQ(h.Sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 100.0);
}

TEST(HistogramTest, QuantilesInterpolateWithinBuckets) {
  // 1..100 over ten equal-width buckets: rank boundaries land exactly on
  // bucket edges, so the interpolated quantiles are exact.
  Histogram h(Histogram::LinearBuckets(10.0, 10.0, 10));
  for (int v = 1; v <= 100; ++v) h.Record(v);
  EXPECT_NEAR(h.Quantile(0.50), 50.0, 1e-9);
  EXPECT_NEAR(h.Quantile(0.90), 90.0, 1e-9);
  EXPECT_NEAR(h.Quantile(0.99), 99.0, 1e-9);
  // Clamped to the observed range at the extremes.
  EXPECT_NEAR(h.Quantile(1.0), 100.0, 1e-9);
  EXPECT_GE(h.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(Histogram({1.0}).Quantile(0.5), 0.0);  // empty -> 0
}

TEST(HistogramTest, OverflowQuantileClampsToObservedMax) {
  Histogram h({10.0});
  h.Record(200.0);
  h.Record(300.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 300.0);
  EXPECT_LE(h.Quantile(0.5), 300.0);
  EXPECT_GE(h.Quantile(0.5), 200.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h({1.0, 2.0});
  h.Record(1.5);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.Min(), 0.0);
  EXPECT_DOUBLE_EQ(h.Max(), 0.0);
  for (uint64_t b : h.BucketCounts()) EXPECT_EQ(b, 0u);
}

TEST(HistogramTest, BucketFactories) {
  const auto exp = Histogram::ExponentialBuckets(1.0, 2.0, 4);
  ASSERT_EQ(exp.size(), 4u);
  EXPECT_DOUBLE_EQ(exp[3], 8.0);
  const auto lin = Histogram::LinearBuckets(5.0, 2.5, 3);
  ASSERT_EQ(lin.size(), 3u);
  EXPECT_DOUBLE_EQ(lin[2], 10.0);
  EXPECT_EQ(Histogram::LatencyBucketsUs().size(), 21u);
}

TEST(TimeSeriesTest, AppendAndReset) {
  TimeSeries s;
  s.Append(0, 1.5);
  s.Append(1, 1.2);
  ASSERT_EQ(s.Size(), 2u);
  const auto points = s.Points();
  EXPECT_DOUBLE_EQ(points[1].second, 1.2);
  s.Reset();
  EXPECT_EQ(s.Size(), 0u);
}

TEST(RegistryTest, GetReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("a");
  Counter* c2 = registry.GetCounter("a");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(registry.GetCounter("b"), c1);
  Histogram* h1 = registry.GetHistogram("h", {1.0, 2.0});
  // Bounds apply on first creation only; later callers get the same object.
  Histogram* h2 = registry.GetHistogram("h", {99.0});
  EXPECT_EQ(h1, h2);
  ASSERT_EQ(h1->bounds().size(), 2u);
}

TEST(RegistryTest, DefaultBoundsAreLatencyBuckets) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GetHistogram("lat")->bounds().size(),
            Histogram::LatencyBucketsUs().size());
}

TEST(RegistryTest, ResetForTestingZeroesButKeepsRegistrations) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  Histogram* h = registry.GetHistogram("h", {1.0});
  TimeSeries* s = registry.GetTimeSeries("s");
  c->Add(5);
  h->Record(0.5);
  s->Append(0, 1.0);
  registry.ResetForTesting();
  EXPECT_EQ(registry.GetCounter("c"), c);  // pointer still valid
  EXPECT_EQ(c->Value(), 0);
  EXPECT_EQ(h->Count(), 0u);
  EXPECT_EQ(s->Size(), 0u);
}

TEST(RegistryTest, ToJsonSections) {
  MetricsRegistry registry;
  registry.GetCounter("hits")->Add(3);
  registry.GetGauge("ratio")->Set(0.75);
  registry.GetHistogram("lat", {10.0, 20.0})->Record(15.0);
  registry.GetTimeSeries("loss")->Append(0, 2.0);
  registry.SetMetaString("scale", "tiny");
  registry.SetMetaNumber("seed", 7);

  const JsonValue root = registry.ToJson();
  EXPECT_EQ(root.Get("schema").string_value(), "simcard.metrics.v1");
  EXPECT_EQ(root.Get("meta").Get("scale").string_value(), "tiny");
  EXPECT_DOUBLE_EQ(root.Get("meta").Get("seed").number_value(), 7.0);
  EXPECT_TRUE(root.Get("meta").Has("timestamp_utc"));
  EXPECT_DOUBLE_EQ(root.Get("counters").Get("hits").number_value(), 3.0);
  EXPECT_DOUBLE_EQ(root.Get("gauges").Get("ratio").number_value(), 0.75);
  const JsonValue& lat = root.Get("histograms").Get("lat");
  EXPECT_DOUBLE_EQ(lat.Get("count").number_value(), 1.0);
  EXPECT_TRUE(lat.Has("p50"));
  EXPECT_TRUE(lat.Has("p99"));
  ASSERT_EQ(lat.Get("buckets").size(), 1u);  // sparse: only non-empty buckets
  EXPECT_DOUBLE_EQ(lat.Get("buckets").at(0).Get("le").number_value(), 20.0);
  const JsonValue& loss = root.Get("series").Get("loss");
  ASSERT_EQ(loss.size(), 1u);
  EXPECT_DOUBLE_EQ(loss.at(0).at(1).number_value(), 2.0);
  // The emitted document must parse back.
  EXPECT_TRUE(JsonValue::Parse(root.Dump(2)).ok());
}

TEST(RegistryTest, ToCsvHasHeaderAndRows) {
  MetricsRegistry registry;
  registry.GetCounter("hits")->Add(3);
  const std::string csv = registry.ToCsv();
  EXPECT_EQ(csv.rfind("kind,name,field,value\n", 0), 0u);
  EXPECT_NE(csv.find("counter,\"hits\",value,3"), std::string::npos);
}

TEST(ScopedTimerTest, RecordsOnlyWhenEnabled) {
  Histogram h({1e9});
  {
    ScopedMetricsEnabled off(false);
    ScopedTimer t(&h);
    EXPECT_EQ(t.Stop(), 0);
  }
  EXPECT_EQ(h.Count(), 0u);
  {
    ScopedMetricsEnabled on(true);
    ScopedTimer t(&h);
  }
  EXPECT_EQ(h.Count(), 1u);
  {
    ScopedMetricsEnabled on(true);
    ScopedTimer t(&h);
    t.Stop();
    t.Stop();  // idempotent: second Stop must not double-record
  }
  EXPECT_EQ(h.Count(), 2u);
  ScopedTimer null_timer(nullptr);  // must be harmless
}

TEST(TraceSpanTest, TracksNestingDepth) {
  ScopedMetricsEnabled on(true);
  EXPECT_EQ(TraceSpan::CurrentDepth(), 0);
  {
    TraceSpan outer("test.outer");
    EXPECT_EQ(TraceSpan::CurrentDepth(), 1);
    {
      TraceSpan inner("test.inner");
      EXPECT_EQ(TraceSpan::CurrentDepth(), 2);
    }
    EXPECT_EQ(TraceSpan::CurrentDepth(), 1);
  }
  EXPECT_EQ(TraceSpan::CurrentDepth(), 0);
  EXPECT_GE(GetHistogram("span.test.outer_us")->Count(), 1u);
}

}  // namespace
}  // namespace obs
}  // namespace simcard
