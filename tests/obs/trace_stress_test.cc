// Concurrency stress for the trace pipeline. Two layers:
//
//  - PublishersRaceCollector: raw seqlock race — writer threads publish
//    into their per-thread TraceSinks while a collector thread repeatedly
//    drains CollectAll/ToJson. Proves the odd/even seqlock protocol yields
//    no torn events and no data races.
//  - WritersRaceCollectorDuringModelSwap: the full serving stack with
//    tracing on — worker threads record request spans while a writer
//    hot-swaps models and a collector exports concurrently. This is the
//    TSan target wired into scripts/check_sanitize.sh tsan.
#include <atomic>
#include <cmath>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "eval/harness.h"
#include "obs/request_trace.h"
#include "serve/estimation_service.h"
#include "serve/model_registry.h"

namespace simcard {
namespace obs {
namespace {

class TraceStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceCollector::Default().ResetForTesting();
    SetTracingEnabled(true);
  }
  void TearDown() override {
    SetTracingEnabled(false);
    TraceCollector::Default().ResetForTesting();
  }
};

TEST_F(TraceStressTest, PublishersRaceCollector) {
  constexpr int kWriters = 4;
  constexpr int kTracesPerWriter = 400;

  std::atomic<bool> stop{false};
  std::atomic<int> started{0};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      started.fetch_add(1);
      for (int i = 0; i < kTracesPerWriter; ++i) {
        TraceContext ctx;
        ctx.Start("serve.request");
        {
          TraceScope eval(&ctx, "serve.eval");
          eval.SetArg("writer", static_cast<double>(w));
          ctx.RecordInstant("gl.segment.fallback", eval.span_id(), "segment",
                            static_cast<double>(i % 8));
        }
        if (i % 7 == 0) ctx.AddFlag(kTraceFallback);
        ctx.Finish();
      }
    });
  }

  // Collector races the writers the whole time: every event it sees must be
  // internally consistent (seqlock skipped the torn ones).
  std::thread collector([&] {
    while (started.load() < kWriters) std::this_thread::yield();
    int torn = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::vector<TraceEvent> events =
          TraceCollector::Default().CollectAll();
      for (const TraceEvent& e : events) {
        if (e.trace_id == 0 || e.span_id == 0 || e.name == nullptr) ++torn;
      }
      (void)TraceCollector::Default().ToJson(0.05);
    }
    EXPECT_EQ(torn, 0);
  });

  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  collector.join();

  // Every writer thread registered a sink and nothing published there was
  // structurally invalid once quiescent.
  EXPECT_GE(TraceCollector::Default().num_sinks(),
            static_cast<size_t>(kWriters));
  for (const TraceEvent& e : TraceCollector::Default().CollectAll()) {
    EXPECT_NE(e.trace_id, 0u);
    EXPECT_NE(e.name, nullptr);
  }
}

TEST_F(TraceStressTest, WritersRaceCollectorDuringModelSwap) {
  EnvOptions env_opts;
  env_opts.num_segments = 6;
  const ExperimentEnv env =
      std::move(BuildEnvironment("glove-sim", Scale::kTiny, env_opts).value());

  GlEstimatorConfig config = GlEstimatorConfig::GlCnn();
  config.local_train.epochs = 15;
  config.global_train.epochs = 15;
  config.tuner.max_trials = 4;
  config.tuner.trial_epochs = 6;
  config.tuner.train_subsample = 200;
  config.tuner.val_subsample = 60;
  config.tune_per_segment = false;

  auto initial = std::make_shared<GlEstimator>(config);
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(initial->Train(ctx).ok());
  const std::vector<uint8_t> bytes = initial->SaveToBytes();
  ASSERT_FALSE(bytes.empty());

  serve::ModelRegistry registry;
  registry.Publish(std::shared_ptr<const GlEstimator>(initial));

  serve::ServeOptions options;
  options.num_threads = 4;
  options.queue_capacity = 256;
  options.default_deadline_ms = 10000.0;
  options.max_batch = 8;
  options.batch_linger_us = 200.0;
  serve::EstimationService service(&registry, options);

  const Matrix& queries = env.workload.test_queries;
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 50;
  constexpr int kSwaps = 6;
  std::atomic<int> answered{0};
  std::atomic<bool> stop{false};

  // Clients: every Submit records spans from the submit thread AND the
  // worker threads into their respective per-thread sinks.
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const size_t row = static_cast<size_t>(c + i) % queries.rows();
        const float* q = queries.Row(row);
        std::vector<float> query(q, q + queries.cols());
        EstimateRequest request;
        request.query = std::span<const float>(query);
        request.tau = 0.3f + 0.05f * static_cast<float>(i % 5);
        request.options.deadline_ms = 10000.0;
        serve::EstimateResponse response = service.Submit(request).get();
        if (response.status.ok()) answered.fetch_add(1);
      }
    });
  }

  // Writer: hot-swaps models while traces are being recorded.
  std::thread writer([&] {
    for (int i = 0; i < kSwaps; ++i) {
      auto clone = std::make_shared<GlEstimator>(config);
      ASSERT_TRUE(
          clone->LoadFromBytes(bytes, GlEstimator::LoadMode::kStrict).ok());
      registry.Publish(std::shared_ptr<const GlEstimator>(std::move(clone)));
      std::this_thread::yield();
    }
  });

  // Collector: concurrent tail-sampled exports while everything races.
  std::thread collector([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)TraceCollector::Default().ToJson(0.05);
      std::this_thread::yield();
    }
  });

  for (auto& t : clients) t.join();
  writer.join();
  service.Drain();
  stop.store(true, std::memory_order_relaxed);
  collector.join();

  EXPECT_EQ(answered.load(), kClients * kRequestsPerClient);
  // Quiescent now: the final export sees well-formed events only.
  for (const TraceEvent& e : TraceCollector::Default().CollectAll()) {
    EXPECT_NE(e.trace_id, 0u);
    EXPECT_NE(e.name, nullptr);
  }
  EXPECT_GT(TraceCollector::Default().CollectAll().size(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace simcard
