// JsonValue writer/reader round-trip tests.
#include "obs/json.h"

#include <gtest/gtest.h>

namespace simcard {
namespace obs {
namespace {

TEST(JsonTest, ScalarsDump) {
  EXPECT_EQ(JsonValue::Null().Dump(), "null");
  EXPECT_EQ(JsonValue::Bool(true).Dump(), "true");
  EXPECT_EQ(JsonValue::Bool(false).Dump(), "false");
  EXPECT_EQ(JsonValue::Int(42).Dump(), "42");
  EXPECT_EQ(JsonValue::Int(-7).Dump(), "-7");
  EXPECT_EQ(JsonValue::Number(1.5).Dump(), "1.5");
  EXPECT_EQ(JsonValue::Str("hi").Dump(), "\"hi\"");
}

TEST(JsonTest, IntegralDoublesDumpWithoutFraction) {
  // Counters are stored as doubles; the report must not print "12.000000".
  EXPECT_EQ(JsonValue::Number(12.0).Dump(), "12");
  EXPECT_EQ(JsonValue::Number(-3.0).Dump(), "-3");
  EXPECT_EQ(JsonValue::Number(0.0).Dump(), "0");
}

TEST(JsonTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  const std::string dumped = JsonValue::Str("line\nbreak").Dump();
  EXPECT_EQ(dumped, "\"line\\nbreak\"");
}

TEST(JsonTest, ObjectKeepsInsertionOrder) {
  JsonValue obj = JsonValue::Object();
  obj.Set("zebra", JsonValue::Int(1));
  obj.Set("alpha", JsonValue::Int(2));
  obj.Set("mid", JsonValue::Int(3));
  EXPECT_EQ(obj.Dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
  // Overwrite updates in place, order unchanged.
  obj.Set("alpha", JsonValue::Int(9));
  EXPECT_EQ(obj.Dump(), "{\"zebra\":1,\"alpha\":9,\"mid\":3}");
}

TEST(JsonTest, ObjectAccessors) {
  JsonValue obj = JsonValue::Object();
  obj.Set("k", JsonValue::Str("v"));
  EXPECT_TRUE(obj.Has("k"));
  EXPECT_FALSE(obj.Has("missing"));
  EXPECT_EQ(obj.Get("k").string_value(), "v");
  EXPECT_TRUE(obj.Get("missing").is_null());
}

TEST(JsonTest, ParseScalars) {
  EXPECT_TRUE(JsonValue::Parse("null").value().is_null());
  EXPECT_TRUE(JsonValue::Parse("true").value().bool_value());
  EXPECT_FALSE(JsonValue::Parse("false").value().bool_value());
  EXPECT_DOUBLE_EQ(JsonValue::Parse("3.25").value().number_value(), 3.25);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("-17").value().number_value(), -17.0);
  EXPECT_DOUBLE_EQ(JsonValue::Parse("1e3").value().number_value(), 1000.0);
  EXPECT_EQ(JsonValue::Parse("\"abc\"").value().string_value(), "abc");
}

TEST(JsonTest, ParseEscapes) {
  auto v = JsonValue::Parse("\"a\\n\\t\\\"\\\\b\\u0041\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().string_value(), "a\n\t\"\\bA");
}

TEST(JsonTest, ParseRejectsGarbage) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
  EXPECT_FALSE(JsonValue::Parse("{} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1,}").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
}

TEST(JsonTest, RoundTripNestedDocument) {
  JsonValue root = JsonValue::Object();
  root.Set("schema", JsonValue::Str("simcard.metrics.v1"));
  JsonValue hist = JsonValue::Object();
  hist.Set("count", JsonValue::Int(3));
  hist.Set("p50", JsonValue::Number(12.5));
  JsonValue buckets = JsonValue::Array();
  JsonValue b = JsonValue::Object();
  b.Set("le", JsonValue::Number(16.0));
  b.Set("count", JsonValue::Int(3));
  buckets.Append(std::move(b));
  hist.Set("buckets", std::move(buckets));
  root.Set("hist", std::move(hist));
  JsonValue series = JsonValue::Array();
  for (int i = 0; i < 3; ++i) {
    JsonValue p = JsonValue::Array();
    p.Append(JsonValue::Int(i));
    p.Append(JsonValue::Number(1.0 / (i + 1)));
    series.Append(std::move(p));
  }
  root.Set("series", std::move(series));

  for (int indent : {0, 2}) {
    const std::string text = root.Dump(indent);
    auto parsed = JsonValue::Parse(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    // A second dump of the parsed tree must be byte-identical to the
    // compact dump of the original (structure + order fully preserved).
    EXPECT_EQ(parsed.value().Dump(), root.Dump());
  }
}

TEST(JsonTest, RoundTripPreservesDoublePrecision) {
  const double values[] = {0.1, 1.0 / 3.0, 1e-9, 123456789.123456, 2e20};
  for (double v : values) {
    auto parsed = JsonValue::Parse(JsonValue::Number(v).Dump());
    ASSERT_TRUE(parsed.ok());
    EXPECT_DOUBLE_EQ(parsed.value().number_value(), v);
  }
}

TEST(JsonTest, PrettyPrintIsIndented) {
  JsonValue root = JsonValue::Object();
  root.Set("a", JsonValue::Int(1));
  const std::string pretty = root.Dump(/*indent=*/2);
  EXPECT_NE(pretty.find("\n  \"a\": 1"), std::string::npos) << pretty;
}

}  // namespace
}  // namespace obs
}  // namespace simcard
