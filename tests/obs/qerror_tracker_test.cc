// Unit tests for the sliding-window Q-error tracker: the paper's q-error
// formula, window eviction, tau bucketing, per-segment windows, and the
// JSON shape the telemetry snapshot embeds.
#include "obs/qerror_tracker.h"

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace simcard {
namespace obs {
namespace {

TEST(QErrorTest, MatchesPaperFormula) {
  // q = max(est, act) / min(est, act), both sides clamped to >= 1.
  EXPECT_DOUBLE_EQ(QErrorTracker::QError(10.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(QErrorTracker::QError(20.0, 10.0), 2.0);
  EXPECT_DOUBLE_EQ(QErrorTracker::QError(10.0, 20.0), 2.0);
  // Empty results must not divide by zero.
  EXPECT_DOUBLE_EQ(QErrorTracker::QError(5.0, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(QErrorTracker::QError(0.0, 0.0), 1.0);
  // Sub-1 estimates clamp too.
  EXPECT_DOUBLE_EQ(QErrorTracker::QError(0.25, 4.0), 4.0);
}

TEST(QErrorTrackerTest, OverallWindowStats) {
  QErrorTracker tracker;
  // Perfect, 2x over, 4x under: q-errors {1, 2, 4}.
  tracker.Record(10.0, 10.0, 0.1f);
  tracker.Record(20.0, 10.0, 0.1f);
  tracker.Record(10.0, 40.0, 0.1f);

  const QErrorWindow overall = tracker.Overall();
  EXPECT_EQ(overall.reports, 3u);
  EXPECT_NEAR(overall.mean, (1.0 + 2.0 + 4.0) / 3.0, 1e-9);
  EXPECT_NEAR(overall.p50, 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(overall.max, 4.0);
  EXPECT_EQ(tracker.total_reports(), 3u);
}

TEST(QErrorTrackerTest, WindowEvictsOldest) {
  QErrorTrackerOptions options;
  options.window = 4;
  QErrorTracker tracker(options);
  // Four terrible reports, then four perfect ones: the bad reports must
  // age out entirely.
  for (int i = 0; i < 4; ++i) tracker.Record(1000.0, 1.0, 0.1f);
  for (int i = 0; i < 4; ++i) tracker.Record(7.0, 7.0, 0.1f);

  const QErrorWindow overall = tracker.Overall();
  EXPECT_EQ(overall.reports, 4u);
  EXPECT_DOUBLE_EQ(overall.max, 1.0);
  // total_reports counts lifetime, not window occupancy.
  EXPECT_EQ(tracker.total_reports(), 8u);
}

TEST(QErrorTrackerTest, TauBucketsSplitReports) {
  QErrorTrackerOptions options;
  options.tau_edges = {0.5f};
  QErrorTracker tracker(options);
  ASSERT_EQ(tracker.num_tau_buckets(), 2u);

  tracker.Record(2.0, 1.0, 0.25f);  // bucket 0: tau <= 0.5
  tracker.Record(8.0, 1.0, 0.75f);  // bucket 1: overflow

  EXPECT_EQ(tracker.TauBucket(0).reports, 1u);
  EXPECT_DOUBLE_EQ(tracker.TauBucket(0).max, 2.0);
  EXPECT_EQ(tracker.TauBucket(1).reports, 1u);
  EXPECT_DOUBLE_EQ(tracker.TauBucket(1).max, 8.0);
}

TEST(QErrorTrackerTest, SegmentWindowsTrackContributors) {
  QErrorTracker tracker;
  const std::vector<uint32_t> segs12 = {1, 2};
  const std::vector<uint32_t> segs2 = {2};
  tracker.Record(2.0, 1.0, 0.1f, std::span<const uint32_t>(segs12));
  tracker.Record(16.0, 1.0, 0.1f, std::span<const uint32_t>(segs2));

  EXPECT_EQ(tracker.Segment(1).reports, 1u);
  EXPECT_DOUBLE_EQ(tracker.Segment(1).max, 2.0);
  EXPECT_EQ(tracker.Segment(2).reports, 2u);
  EXPECT_DOUBLE_EQ(tracker.Segment(2).max, 16.0);
  EXPECT_EQ(tracker.Segment(3).reports, 0u);

  const std::vector<ObservedSegmentAccuracy> per = tracker.PerSegment();
  ASSERT_EQ(per.size(), 2u);
  EXPECT_EQ(per[0].segment, 1u);
  EXPECT_EQ(per[1].segment, 2u);
  EXPECT_EQ(per[1].reports, 2u);
  EXPECT_GE(per[1].qerror_p90, per[1].qerror_p50);
}

TEST(QErrorTrackerTest, IgnoresNonFiniteInputs) {
  QErrorTracker tracker;
  tracker.Record(std::nan(""), 10.0, 0.1f);
  tracker.Record(10.0, std::numeric_limits<double>::infinity(), 0.1f);
  EXPECT_EQ(tracker.total_reports(), 0u);
}

TEST(QErrorTrackerTest, UntrackedSegmentIdsAreDropped) {
  QErrorTrackerOptions options;
  options.max_segments = 4;
  QErrorTracker tracker(options);
  const std::vector<uint32_t> segs = {2, 9};
  tracker.Record(2.0, 1.0, 0.1f, std::span<const uint32_t>(segs));
  EXPECT_EQ(tracker.Segment(2).reports, 1u);
  EXPECT_EQ(tracker.PerSegment().size(), 1u);
}

TEST(QErrorTrackerTest, JsonShapeMatchesTelemetrySchema) {
  QErrorTracker tracker;
  const std::vector<uint32_t> segs = {0};
  tracker.Record(2.0, 1.0, 0.3f, std::span<const uint32_t>(segs));

  const std::string json = tracker.ToJson().Dump();
  EXPECT_NE(json.find("\"window\""), std::string::npos);
  EXPECT_NE(json.find("\"total_reports\""), std::string::npos);
  EXPECT_NE(json.find("\"overall\""), std::string::npos);
  EXPECT_NE(json.find("\"by_tau\""), std::string::npos);
  EXPECT_NE(json.find("\"by_segment\""), std::string::npos);
}

TEST(QErrorTrackerTest, ResetEmptiesEveryWindow) {
  QErrorTracker tracker;
  const std::vector<uint32_t> segs = {1};
  tracker.Record(4.0, 1.0, 0.1f, std::span<const uint32_t>(segs));
  tracker.Reset();
  EXPECT_EQ(tracker.Overall().reports, 0u);
  EXPECT_EQ(tracker.total_reports(), 0u);
  EXPECT_TRUE(tracker.PerSegment().empty());
}

}  // namespace
}  // namespace obs
}  // namespace simcard
