// Unit tests for request-scoped tracing: TraceContext lifecycle, the
// single-writer seqlock TraceSink ring (overwrite + dropped accounting),
// TraceScope parent links, and TraceCollector's tail-sampled
// simcard.traces.v1 export.
#include "obs/request_trace.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace simcard {
namespace obs {
namespace {

class RequestTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceCollector::Default().ResetForTesting();
    SetTracingEnabled(true);
  }
  void TearDown() override {
    SetTracingEnabled(false);
    TraceCollector::Default().ResetForTesting();
  }
};

std::vector<TraceEvent> EventsFor(uint64_t trace_id) {
  std::vector<TraceEvent> all = TraceCollector::Default().CollectAll();
  std::vector<TraceEvent> mine;
  for (const TraceEvent& e : all) {
    if (e.trace_id == trace_id) mine.push_back(e);
  }
  return mine;
}

TEST_F(RequestTraceTest, InactiveContextPublishesNothing) {
  SetTracingEnabled(false);
  TraceContext ctx;
  ctx.Start("serve.request");
  EXPECT_FALSE(ctx.active());
  ctx.RecordInstant("serve.shed");
  ctx.Finish();
  EXPECT_TRUE(TraceCollector::Default().CollectAll().empty());
}

TEST_F(RequestTraceTest, FinishEmitsRootWithAccumulatedFlags) {
  TraceContext ctx;
  ctx.Start("serve.request");
  ASSERT_TRUE(ctx.active());
  const uint64_t id = ctx.trace_id();
  EXPECT_NE(id, 0u);

  ctx.AddFlag(kTraceShed);
  ctx.AddFlag(kTraceFallback);
  ctx.Finish();
  EXPECT_FALSE(ctx.active());

  const std::vector<TraceEvent> events = EventsFor(id);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].span_id, TraceContext::kRootSpan);
  EXPECT_EQ(events[0].parent_id, 0u);
  EXPECT_EQ(events[0].flags, kTraceShed | kTraceFallback);
  EXPECT_STREQ(events[0].name, "serve.request");
  EXPECT_GE(events[0].dur_us, 0);

  // Finish is idempotent: a second call must not emit a second root.
  ctx.Finish();
  EXPECT_EQ(EventsFor(id).size(), 1u);
}

TEST_F(RequestTraceTest, ScopesAndInstantsLinkToParents) {
  TraceContext ctx;
  ctx.Start("serve.request");
  const uint64_t id = ctx.trace_id();

  uint32_t eval_span = 0;
  {
    TraceScope eval(&ctx, "serve.eval");
    eval_span = eval.span_id();
    ASSERT_NE(eval_span, 0u);
    eval.SetArg("batch", 3.0);
    TraceScope seg(&ctx, "gl.segment", eval_span);
    ctx.RecordInstant("gl.segment.fallback", seg.span_id(), "segment", 2.0);
  }
  ctx.Finish();

  const std::vector<TraceEvent> events = EventsFor(id);
  ASSERT_EQ(events.size(), 4u);  // fallback instant, segment, eval, root

  const TraceEvent* eval = nullptr;
  const TraceEvent* seg = nullptr;
  const TraceEvent* instant = nullptr;
  for (const TraceEvent& e : events) {
    const std::string name = e.name;
    if (name == "serve.eval") eval = &e;
    if (name == "gl.segment") seg = &e;
    if (name == "gl.segment.fallback") instant = &e;
  }
  ASSERT_NE(eval, nullptr);
  ASSERT_NE(seg, nullptr);
  ASSERT_NE(instant, nullptr);

  EXPECT_EQ(eval->parent_id, TraceContext::kRootSpan);
  EXPECT_STREQ(eval->arg_name, "batch");
  EXPECT_DOUBLE_EQ(eval->arg, 3.0);
  EXPECT_EQ(seg->parent_id, eval_span);
  EXPECT_EQ(instant->parent_id, seg->span_id);
  EXPECT_EQ(instant->dur_us, -1);  // instant encoding
  EXPECT_DOUBLE_EQ(instant->arg, 2.0);
}

TEST_F(RequestTraceTest, MoveTransfersOwnershipOfTheRootEmission) {
  TraceContext a;
  a.Start("serve.request");
  const uint64_t id = a.trace_id();
  TraceContext b = std::move(a);
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): pinned
  EXPECT_TRUE(b.active());
  EXPECT_EQ(b.trace_id(), id);
  b.Finish();
  EXPECT_EQ(EventsFor(id).size(), 1u);  // exactly one root, from b
}

TEST_F(RequestTraceTest, RetroSpansUseCallerTimestamps) {
  TraceContext ctx;
  ctx.Start("serve.request");
  const uint64_t id = ctx.trace_id();
  const uint32_t queue_span = ctx.NewSpanId();
  ctx.RecordSpan("serve.queue", /*start_us=*/100, /*end_us=*/250, queue_span);
  ctx.Finish();

  const std::vector<TraceEvent> events = EventsFor(id);
  const auto it = std::find_if(
      events.begin(), events.end(),
      [](const TraceEvent& e) { return std::string(e.name) == "serve.queue"; });
  ASSERT_NE(it, events.end());
  EXPECT_EQ(it->start_us, 100);
  EXPECT_EQ(it->dur_us, 150);
}

TEST_F(RequestTraceTest, SinkOverwritesOldestAndCountsDrops) {
  TraceSink sink(/*thread_ordinal=*/99, /*capacity=*/4);
  for (uint32_t i = 1; i <= 6; ++i) {
    TraceEvent e;
    e.trace_id = 1;
    e.span_id = i;
    e.name = "x";
    sink.Publish(e);
  }
  EXPECT_EQ(sink.published(), 6u);
  EXPECT_EQ(sink.dropped(), 2u);

  std::vector<TraceEvent> out;
  EXPECT_EQ(sink.Collect(&out), 4u);
  std::vector<uint32_t> ids;
  for (const TraceEvent& e : out) ids.push_back(e.span_id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<uint32_t>{3, 4, 5, 6}));

  sink.ResetForTesting();
  out.clear();
  EXPECT_EQ(sink.Collect(&out), 0u);
}

TEST_F(RequestTraceTest, TailSamplerKeepsFlaggedAndSlowestTraces) {
  // Three traces: one flagged (shed), one slow, many fast unflagged.
  {
    TraceContext shed;
    shed.Start("serve.request");
    shed.AddFlag(kTraceShed);
    shed.Finish();
  }
  uint64_t slow_id = 0;
  {
    TraceContext slow;
    slow.Start("serve.request");
    slow_id = slow.trace_id();
    // Slowness competes on ROOT duration: hold the root open long enough to
    // dominate the sub-microsecond fast traces deterministically.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    slow.Finish();
  }
  for (int i = 0; i < 10; ++i) {
    TraceContext fast;
    fast.Start("serve.request");
    fast.Finish();
  }

  const std::string json =
      TraceCollector::Default().ToJson(/*keep_slowest_fraction=*/0.05).Dump(2);
  EXPECT_NE(json.find("\"simcard.traces.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"shed\""), std::string::npos);  // flag names on root
  // With 12 traces and a 5% slow quota, kept = 1 flagged + 1 slowest.
  EXPECT_NE(json.find("\"traces_kept\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"kept_flagged\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"kept_slowest\": 1"), std::string::npos);
  // The slowest-kept trace must be the one with the long span.
  EXPECT_NE(json.find("\"trace_id\": " + std::to_string(slow_id)),
            std::string::npos);
}

TEST_F(RequestTraceTest, CollectorTracksSinksAndTraceIds) {
  auto& collector = TraceCollector::Default();
  const uint64_t a = collector.NextTraceId();
  const uint64_t b = collector.NextTraceId();
  EXPECT_EQ(b, a + 1);
  TraceSink* sink = collector.SinkForThisThread();
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(collector.SinkForThisThread(), sink);  // cached per thread
  EXPECT_GE(collector.num_sinks(), 1u);
}

TEST_F(RequestTraceTest, FlagNamesRenderAsPipeList) {
  EXPECT_EQ(TraceFlagNames(0), "");
  EXPECT_EQ(TraceFlagNames(kTraceShed), "shed");
  const std::string names =
      TraceFlagNames(kTraceDeadlineExceeded | kTraceFallback);
  EXPECT_NE(names.find("deadline"), std::string::npos);
  EXPECT_NE(names.find("fallback"), std::string::npos);
  EXPECT_NE(names.find('|'), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace simcard
