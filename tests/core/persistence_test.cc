// Model persistence: a trained estimator saved to disk and loaded into a
// fresh object must produce bit-identical estimates — the paper's workflow
// of "trained in PyTorch, copied into a C++ implementation for testing"
// needs exactly this property.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/gl_estimator.h"
#include "eval/harness.h"
#include "support/request_helpers.h"

namespace simcard {
namespace {

using testsupport::EstimateCard;

GlEstimatorConfig FastGlConfig() {
  GlEstimatorConfig config = GlEstimatorConfig::GlCnn();
  config.local_train.epochs = 10;
  config.global_train.epochs = 10;
  return config;
}

TEST(PersistenceTest, SaveRequiresTrainedEstimator) {
  GlEstimator est(FastGlConfig());
  EXPECT_FALSE(est.SaveToFile(testing::TempDir() + "/untrained.bin").ok());
}

TEST(PersistenceTest, GlRoundTripEstimatesIdentically) {
  EnvOptions opts;
  opts.num_segments = 4;
  auto env =
      std::move(BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
  GlEstimator trained(FastGlConfig());
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(trained.Train(ctx).ok());

  const std::string path = testing::TempDir() + "/simcard_gl_model.bin";
  ASSERT_TRUE(trained.SaveToFile(path).ok());

  GlEstimator restored(FastGlConfig());
  ASSERT_TRUE(restored.LoadFromFile(path).ok());
  EXPECT_EQ(restored.num_local_models(), trained.num_local_models());
  EXPECT_NE(restored.global_model(), nullptr);

  for (size_t i = 0; i < 5; ++i) {
    const auto& lq = env.workload.test[i];
    const float* q = env.workload.test_queries.Row(lq.row);
    for (const auto& t : lq.thresholds) {
      EXPECT_DOUBLE_EQ(EstimateCard(restored, q, t.tau),
                       EstimateCard(trained, q, t.tau));
    }
  }
  std::remove(path.c_str());
}

TEST(PersistenceTest, LocalPlusRoundTripWithoutGlobal) {
  EnvOptions opts;
  opts.num_segments = 3;
  auto env =
      std::move(BuildEnvironment("imagenet-sim", Scale::kTiny, opts).value());
  GlEstimatorConfig config = GlEstimatorConfig::LocalPlus();
  config.auto_tune = false;
  config.local_train.epochs = 8;
  GlEstimator trained(config);
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(trained.Train(ctx).ok());

  const std::string path = testing::TempDir() + "/simcard_localplus.bin";
  ASSERT_TRUE(trained.SaveToFile(path).ok());
  GlEstimator restored(config);
  ASSERT_TRUE(restored.LoadFromFile(path).ok());
  EXPECT_EQ(restored.global_model(), nullptr);
  const float* q = env.workload.test_queries.Row(0);
  EXPECT_DOUBLE_EQ(EstimateCard(restored, q, 0.2f),
                   EstimateCard(trained, q, 0.2f));
  std::remove(path.c_str());
}

TEST(PersistenceTest, LoadRejectsGarbageFile) {
  const std::string path = testing::TempDir() + "/simcard_garbage.bin";
  Serializer out;
  out.WriteString("not a model");
  ASSERT_TRUE(out.SaveToFile(path).ok());
  GlEstimator est(FastGlConfig());
  EXPECT_FALSE(est.LoadFromFile(path).ok());
  std::remove(path.c_str());
}

TEST(PersistenceTest, LoadRejectsMissingFile) {
  GlEstimator est(FastGlConfig());
  EXPECT_FALSE(est.LoadFromFile("/nonexistent/model.bin").ok());
}

// A refresh mutates the segmentation in ways the assignment vector alone
// cannot reconstruct (member-list order seeds the fallback sampling; rows
// routed with gaps are in no member list at all). Snapshotting mid-refresh
// must round-trip that state exactly through the checked container.
TEST(PersistenceTest, MidRefreshSnapshotRoundTripsSegmentation) {
  EnvOptions opts;
  opts.num_segments = 5;
  auto env =
      std::move(BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
  GlEstimator trained(FastGlConfig());
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(trained.Train(ctx).ok());

  // Mid-refresh state: erase a scattered batch, route an insert batch,
  // re-sample the touched fallbacks.
  std::vector<uint32_t> erases;
  for (uint32_t row = 5; row < 200; row += 13) erases.push_back(row);
  env.dataset.EraseRows(erases);
  std::vector<size_t> touched;
  ASSERT_TRUE(trained.EraseRows(env.dataset, erases, &touched).ok());
  Matrix updates =
      MakeAnalogUpdates("glove-sim", Scale::kTiny, 30, env.seed + 1).value();
  const uint32_t first_new = static_cast<uint32_t>(env.dataset.size());
  env.dataset.Append(updates);
  std::vector<uint32_t> new_rows(30);
  for (size_t i = 0; i < 30; ++i) {
    new_rows[i] = first_new + static_cast<uint32_t>(i);
  }
  ASSERT_TRUE(trained.RouteInserts(env.dataset, new_rows, &touched).ok());
  trained.RebuildFallbacks(env.dataset, touched, /*seed=*/17);

  std::vector<uint8_t> bytes = trained.SaveToBytes();
  ASSERT_FALSE(bytes.empty());
  GlEstimator restored(FastGlConfig());
  ASSERT_TRUE(restored.LoadFromBytes(std::move(bytes)).ok());

  const Segmentation& a = trained.segmentation();
  const Segmentation& b = restored.segmentation();
  EXPECT_EQ(b.assignment, a.assignment);
  EXPECT_EQ(b.members, a.members);  // exact lists, including order
  EXPECT_EQ(b.radius, a.radius);
  ASSERT_EQ(b.centroids.rows(), a.centroids.rows());
  for (size_t s = 0; s < a.centroids.rows(); ++s) {
    for (size_t j = 0; j < a.centroids.cols(); ++j) {
      EXPECT_EQ(b.centroids.at(s, j), a.centroids.at(s, j));
    }
  }
  for (size_t s = 0; s < trained.num_local_models(); ++s) {
    EXPECT_EQ(restored.segment_fallback(s).samples,
              trained.segment_fallback(s).samples);
    EXPECT_EQ(restored.segment_fallback(s).segment_size,
              trained.segment_fallback(s).segment_size);
  }
  // Identical member order => identical fallback re-sampling downstream.
  std::vector<size_t> all(trained.num_local_models());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  trained.RebuildFallbacks(env.dataset, all, /*seed=*/23);
  restored.RebuildFallbacks(env.dataset, all, /*seed=*/23);
  for (size_t s = 0; s < trained.num_local_models(); ++s) {
    EXPECT_EQ(restored.segment_fallback(s).samples,
              trained.segment_fallback(s).samples);
  }
}

// A routing gap (rows appended but not yet routed) leaves rows that belong
// to NO segment: assignment-derived member lists would misfile them, so the
// exact-members section must win.
TEST(PersistenceTest, GapRowsSurviveRoundTrip) {
  EnvOptions opts;
  opts.num_segments = 4;
  auto env =
      std::move(BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
  GlEstimator trained(FastGlConfig());
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(trained.Train(ctx).ok());

  Matrix updates =
      MakeAnalogUpdates("glove-sim", Scale::kTiny, 4, env.seed + 2).value();
  const uint32_t first_new = static_cast<uint32_t>(env.dataset.size());
  env.dataset.Append(updates);
  // Route only the LAST appended row: the first three become gap rows
  // (assignment padded, member of nothing).
  std::vector<uint32_t> routed{first_new + 3};
  std::vector<size_t> touched;
  ASSERT_TRUE(trained.RouteInserts(env.dataset, routed, &touched).ok());
  size_t total_members = 0;
  for (const auto& m : trained.segmentation().members) {
    total_members += m.size();
  }
  ASSERT_EQ(total_members, trained.segmentation().assignment.size() - 3);

  std::vector<uint8_t> bytes = trained.SaveToBytes();
  GlEstimator restored(FastGlConfig());
  ASSERT_TRUE(restored.LoadFromBytes(std::move(bytes)).ok());
  EXPECT_EQ(restored.segmentation().members,
            trained.segmentation().members);
  size_t restored_members = 0;
  for (const auto& m : restored.segmentation().members) {
    restored_members += m.size();
  }
  // Without the members section the three gap rows would be misfiled into
  // segment 0 by the assignment-derived reconstruction.
  EXPECT_EQ(restored_members, total_members);
}

TEST(PersistenceTest, LoadedModelSupportsFurtherUpdates) {
  EnvOptions opts;
  opts.num_segments = 4;
  auto env =
      std::move(BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
  GlEstimator trained(FastGlConfig());
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(trained.Train(ctx).ok());
  const std::string path = testing::TempDir() + "/simcard_updatable.bin";
  ASSERT_TRUE(trained.SaveToFile(path).ok());

  GlEstimator restored(FastGlConfig());
  ASSERT_TRUE(restored.LoadFromFile(path).ok());
  // Stream an update batch through the restored estimator.
  Matrix updates =
      MakeAnalogUpdates("glove-sim", Scale::kTiny, 20, env.seed).value();
  const uint32_t first_new = static_cast<uint32_t>(env.dataset.size());
  env.dataset.Append(updates);
  std::vector<uint32_t> new_rows(20);
  for (size_t i = 0; i < 20; ++i) {
    new_rows[i] = first_new + static_cast<uint32_t>(i);
  }
  EXPECT_TRUE(
      restored.ApplyUpdates(env.dataset, &env.workload, new_rows, 7).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace simcard
