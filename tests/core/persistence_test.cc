// Model persistence: a trained estimator saved to disk and loaded into a
// fresh object must produce bit-identical estimates — the paper's workflow
// of "trained in PyTorch, copied into a C++ implementation for testing"
// needs exactly this property.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/gl_estimator.h"
#include "eval/harness.h"

namespace simcard {
namespace {

GlEstimatorConfig FastGlConfig() {
  GlEstimatorConfig config = GlEstimatorConfig::GlCnn();
  config.local_train.epochs = 10;
  config.global_train.epochs = 10;
  return config;
}

TEST(PersistenceTest, SaveRequiresTrainedEstimator) {
  GlEstimator est(FastGlConfig());
  EXPECT_FALSE(est.SaveToFile(testing::TempDir() + "/untrained.bin").ok());
}

TEST(PersistenceTest, GlRoundTripEstimatesIdentically) {
  EnvOptions opts;
  opts.num_segments = 4;
  auto env =
      std::move(BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
  GlEstimator trained(FastGlConfig());
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(trained.Train(ctx).ok());

  const std::string path = testing::TempDir() + "/simcard_gl_model.bin";
  ASSERT_TRUE(trained.SaveToFile(path).ok());

  GlEstimator restored(FastGlConfig());
  ASSERT_TRUE(restored.LoadFromFile(path).ok());
  EXPECT_EQ(restored.num_local_models(), trained.num_local_models());
  EXPECT_NE(restored.global_model(), nullptr);

  for (size_t i = 0; i < 5; ++i) {
    const auto& lq = env.workload.test[i];
    const float* q = env.workload.test_queries.Row(lq.row);
    for (const auto& t : lq.thresholds) {
      EXPECT_DOUBLE_EQ(restored.EstimateSearch(q, t.tau),
                       trained.EstimateSearch(q, t.tau));
    }
  }
  std::remove(path.c_str());
}

TEST(PersistenceTest, LocalPlusRoundTripWithoutGlobal) {
  EnvOptions opts;
  opts.num_segments = 3;
  auto env =
      std::move(BuildEnvironment("imagenet-sim", Scale::kTiny, opts).value());
  GlEstimatorConfig config = GlEstimatorConfig::LocalPlus();
  config.auto_tune = false;
  config.local_train.epochs = 8;
  GlEstimator trained(config);
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(trained.Train(ctx).ok());

  const std::string path = testing::TempDir() + "/simcard_localplus.bin";
  ASSERT_TRUE(trained.SaveToFile(path).ok());
  GlEstimator restored(config);
  ASSERT_TRUE(restored.LoadFromFile(path).ok());
  EXPECT_EQ(restored.global_model(), nullptr);
  const float* q = env.workload.test_queries.Row(0);
  EXPECT_DOUBLE_EQ(restored.EstimateSearch(q, 0.2f),
                   trained.EstimateSearch(q, 0.2f));
  std::remove(path.c_str());
}

TEST(PersistenceTest, LoadRejectsGarbageFile) {
  const std::string path = testing::TempDir() + "/simcard_garbage.bin";
  Serializer out;
  out.WriteString("not a model");
  ASSERT_TRUE(out.SaveToFile(path).ok());
  GlEstimator est(FastGlConfig());
  EXPECT_FALSE(est.LoadFromFile(path).ok());
  std::remove(path.c_str());
}

TEST(PersistenceTest, LoadRejectsMissingFile) {
  GlEstimator est(FastGlConfig());
  EXPECT_FALSE(est.LoadFromFile("/nonexistent/model.bin").ok());
}

TEST(PersistenceTest, LoadedModelSupportsFurtherUpdates) {
  EnvOptions opts;
  opts.num_segments = 4;
  auto env =
      std::move(BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
  GlEstimator trained(FastGlConfig());
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(trained.Train(ctx).ok());
  const std::string path = testing::TempDir() + "/simcard_updatable.bin";
  ASSERT_TRUE(trained.SaveToFile(path).ok());

  GlEstimator restored(FastGlConfig());
  ASSERT_TRUE(restored.LoadFromFile(path).ok());
  // Stream an update batch through the restored estimator.
  Matrix updates =
      MakeAnalogUpdates("glove-sim", Scale::kTiny, 20, env.seed).value();
  const uint32_t first_new = static_cast<uint32_t>(env.dataset.size());
  env.dataset.Append(updates);
  std::vector<uint32_t> new_rows(20);
  for (size_t i = 0; i < 20; ++i) {
    new_rows[i] = first_new + static_cast<uint32_t>(i);
  }
  EXPECT_TRUE(
      restored.ApplyUpdates(env.dataset, &env.workload, new_rows, 7).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace simcard
