// Pins the batched inference path to the single-query path bit for bit.
//
// EstimateSearchBatch shares SelectWithGuards with the single path and
// accumulates per-row sums in the same ascending-segment order, so on a
// deterministic model batch and single answers must be EXACTLY equal — not
// approximately. Any reassociation of the floating-point reductions (in the
// blocked matmuls, the batched distance kernel, or the per-segment sum)
// breaks these EXPECT_EQ checks. Coverage includes invalid rows, mixed
// valid/invalid batches, quarantined locals answering through the sampling
// fallback, and the default Estimator::EstimateBatch loop on a baseline.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <span>
#include <vector>

#include "common/checked_file.h"
#include "common/rng.h"
#include "core/gl_estimator.h"
#include "dist/metric.h"
#include "baselines/sampling_estimator.h"
#include "eval/harness.h"

namespace simcard {
namespace {

constexpr float kNaNf = std::numeric_limits<float>::quiet_NaN();

const ExperimentEnv& SharedEnv() {
  static const ExperimentEnv* env = [] {
    EnvOptions opts;
    opts.num_segments = 6;
    return new ExperimentEnv(std::move(
        BuildEnvironment("glove-sim", Scale::kTiny, opts).value()));
  }();
  return *env;
}

GlEstimatorConfig FastConfig(GlEstimatorConfig config) {
  config.local_train.epochs = 8;
  config.global_train.epochs = 8;
  config.tuner.max_trials = 2;
  config.tuner.trial_epochs = 4;
  config.tuner.train_subsample = 200;
  config.tuner.val_subsample = 60;
  config.tune_per_segment = false;
  return config;
}

const GlEstimator& TrainedGlCnn() {
  static const GlEstimator* est = [] {
    auto* e = new GlEstimator(FastConfig(GlEstimatorConfig::GlCnn()));
    TrainContext ctx = MakeTrainContext(SharedEnv());
    EXPECT_TRUE(e->Train(ctx).ok());
    return e;
  }();
  return *est;
}

double Single(const GlEstimator& est, const float* q, size_t dim, float tau) {
  EstimateRequest request;
  request.query = std::span<const float>(q, dim);
  request.tau = tau;
  return est.Estimate(request);
}

// Every (test query, threshold) pair of the workload in one batch: the
// batched path must reproduce the single-query path exactly, including all
// per-row pruning decisions.
TEST(BatchParityTest, WholeWorkloadBitwiseEqual) {
  const GlEstimator& est = TrainedGlCnn();
  const SearchWorkload& wl = SharedEnv().workload;
  const size_t dim = wl.test_queries.cols();

  std::vector<const float*> rows;
  std::vector<float> taus;
  for (const auto& lq : wl.test) {
    for (const auto& t : lq.thresholds) {
      rows.push_back(wl.test_queries.Row(lq.row));
      taus.push_back(t.tau);
    }
  }
  ASSERT_GT(rows.size(), 16u);

  Matrix queries(rows.size(), dim);
  for (size_t i = 0; i < rows.size(); ++i) queries.SetRow(i, rows[i]);
  const std::vector<double> batch = est.EstimateSearchBatch(
      queries, std::span<const float>(taus.data(), taus.size()));
  ASSERT_EQ(batch.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(batch[i], Single(est, rows[i], dim, taus[i])) << "row " << i;
  }
}

// Invalid rows (non-finite query, NaN/negative tau) answer 0.0 in both
// paths, and their presence must not disturb the valid rows packed around
// them.
TEST(BatchParityTest, InvalidRowsIsolatedInMixedBatch) {
  const GlEstimator& est = TrainedGlCnn();
  const SearchWorkload& wl = SharedEnv().workload;
  const size_t dim = wl.test_queries.cols();

  Matrix queries(5, dim);
  queries.SetRow(0, wl.test_queries.Row(0));
  queries.SetRow(1, wl.test_queries.Row(1));
  queries.SetRow(2, wl.test_queries.Row(2));
  queries.at(2, dim / 2) = kNaNf;  // poisoned query vector
  queries.SetRow(3, wl.test_queries.Row(3));
  queries.SetRow(4, wl.test_queries.Row(4));
  const std::vector<float> taus = {0.2f, kNaNf, 0.2f, -0.5f, 0.3f};

  const std::vector<double> batch = est.EstimateSearchBatch(
      queries, std::span<const float>(taus.data(), taus.size()));
  ASSERT_EQ(batch.size(), 5u);
  EXPECT_EQ(batch[1], 0.0);  // NaN tau
  EXPECT_EQ(batch[2], 0.0);  // NaN query
  EXPECT_EQ(batch[3], 0.0);  // negative tau
  EXPECT_EQ(batch[0], Single(est, wl.test_queries.Row(0), dim, 0.2f));
  EXPECT_EQ(batch[4], Single(est, wl.test_queries.Row(4), dim, 0.3f));
}

// A taus span shorter than the batch marks the tail rows invalid (0.0)
// instead of reading out of bounds.
TEST(BatchParityTest, ShortTauSpanZeroesTail) {
  const GlEstimator& est = TrainedGlCnn();
  const SearchWorkload& wl = SharedEnv().workload;
  const size_t dim = wl.test_queries.cols();

  Matrix queries(3, dim);
  for (size_t i = 0; i < 3; ++i) queries.SetRow(i, wl.test_queries.Row(i));
  const std::vector<float> taus = {0.25f};  // rows 1..2 have no tau
  const std::vector<double> batch = est.EstimateSearchBatch(
      queries, std::span<const float>(taus.data(), taus.size()));
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0], Single(est, wl.test_queries.Row(0), dim, 0.25f));
  EXPECT_EQ(batch[1], 0.0);
  EXPECT_EQ(batch[2], 0.0);
}

// Quarantined locals (degraded load) answer through the sampling fallback;
// the batch path must route those rows through the same fallback and stay
// bitwise-equal to the single path.
TEST(BatchParityTest, QuarantinedSegmentRowsMatchSinglePath) {
  const GlEstimator& trained = TrainedGlCnn();
  const std::string path = testing::TempDir() + "/batch_parity_model.bin";
  ASSERT_TRUE(trained.SaveToFile(path).ok());

  // Corrupt one payload byte of "local.1" so degraded load quarantines it.
  std::vector<uint8_t> bytes;
  {
    FILE* f = fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    fseek(f, 0, SEEK_END);
    bytes.resize(static_cast<size_t>(ftell(f)));
    fseek(f, 0, SEEK_SET);
    ASSERT_EQ(fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    fclose(f);
  }
  auto reader_or = CheckedFileReader::FromBytes(bytes);
  ASSERT_TRUE(reader_or.ok());
  bool found = false;
  for (const auto& info : reader_or.value().sections()) {
    if (info.name == "local.1") {
      ASSERT_GT(info.size, 8u);
      bytes[info.offset + info.size / 2] ^= 0x40;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  {
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    fclose(f);
  }

  GlEstimator degraded(GlEstimatorConfig::GlCnn());
  ASSERT_TRUE(
      degraded.LoadFromFile(path, GlEstimator::LoadMode::kDegraded).ok());
  ASSERT_EQ(degraded.num_quarantined_locals(), 1u);

  const SearchWorkload& wl = SharedEnv().workload;
  const size_t dim = wl.test_queries.cols();
  const size_t n = std::min<size_t>(12, wl.test_queries.rows());
  Matrix queries(n, dim);
  std::vector<float> taus(n);
  for (size_t i = 0; i < n; ++i) {
    queries.SetRow(i, wl.test_queries.Row(i));
    // Large taus pull in many segments, including the quarantined one.
    taus[i] = 0.4f + 0.05f * static_cast<float>(i % 4);
  }
  const std::vector<double> batch = degraded.EstimateSearchBatch(
      queries, std::span<const float>(taus.data(), taus.size()));
  ASSERT_EQ(batch.size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(batch[i], Single(degraded, wl.test_queries.Row(i), dim, taus[i]))
        << "row " << i;
  }
  std::remove(path.c_str());
}

// Estimators without a specialized batch path inherit the base EstimateBatch
// loop, which must agree with per-row Estimate calls.
TEST(BatchParityTest, DefaultEstimateBatchLoopsSingle) {
  SamplingEstimator est("Sampling (10%)", 0.10);
  TrainContext ctx = MakeTrainContext(SharedEnv());
  ASSERT_TRUE(est.Train(ctx).ok());

  const SearchWorkload& wl = SharedEnv().workload;
  const size_t dim = wl.test_queries.cols();
  const size_t n = std::min<size_t>(8, wl.test_queries.rows());
  Matrix queries(n, dim);
  std::vector<float> taus(n);
  for (size_t i = 0; i < n; ++i) {
    queries.SetRow(i, wl.test_queries.Row(i));
    taus[i] = 0.1f + 0.05f * static_cast<float>(i);
  }
  BatchEstimateRequest request;
  request.queries = &queries;
  request.taus = std::span<const float>(taus.data(), taus.size());
  const std::vector<double> batch = est.EstimateBatch(request);
  ASSERT_EQ(batch.size(), n);
  for (size_t i = 0; i < n; ++i) {
    EstimateRequest single;
    single.query = std::span<const float>(queries.Row(i), dim);
    single.tau = taus[i];
    EXPECT_EQ(batch[i], est.Estimate(single)) << "row " << i;
  }
}

// The batched distance kernel behind the feature builders must reproduce the
// scalar Distance() for every metric, including the zero-norm cosine branch.
TEST(BatchParityTest, BatchDistancesMatchScalarKernel) {
  Rng rng(17);
  const size_t d = 9;
  Matrix queries(5, d);
  Matrix points(7, d);
  for (size_t i = 0; i < queries.size(); ++i) {
    queries.data()[i] = rng.NextFloat() * 2.0f - 1.0f;
  }
  for (size_t i = 0; i < points.size(); ++i) {
    points.data()[i] = rng.NextFloat() * 2.0f - 1.0f;
  }
  // Exercise the zero-norm branches of cosine/angular.
  for (size_t c = 0; c < d; ++c) queries.at(4, c) = 0.0f;

  for (Metric metric : {Metric::kL1, Metric::kL2, Metric::kCosine,
                        Metric::kAngular, Metric::kHamming}) {
    const Matrix dists = BatchDistances(queries, points, metric);
    ASSERT_EQ(dists.rows(), queries.rows());
    ASSERT_EQ(dists.cols(), points.rows());
    for (size_t i = 0; i < queries.rows(); ++i) {
      for (size_t j = 0; j < points.rows(); ++j) {
        EXPECT_EQ(dists.at(i, j),
                  Distance(queries.Row(i), points.Row(j), d, metric))
            << MetricName(metric) << " (" << i << "," << j << ")";
      }
    }
  }
}

}  // namespace
}  // namespace simcard
