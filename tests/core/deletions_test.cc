// Deletion-side incremental maintenance (Section 5.3 covers inserts and
// deletes; inserts are tested in gl_estimator_test.cc).
#include <gtest/gtest.h>

#include "core/gl_estimator.h"
#include "eval/harness.h"

namespace simcard {
namespace {

TEST(SegmentationDeletionTest, RemoveTrailingPointsUpdatesMembership) {
  auto d = MakeAnalogDataset("glove-sim", Scale::kTiny, 3).value();
  SegmentationOptions opts;
  opts.target_segments = 5;
  auto seg = SegmentData(d, opts).value();
  const size_t n = d.size();
  const size_t removed = 100;
  auto touched = seg.RemoveTrailingPoints(removed);
  EXPECT_FALSE(touched.empty());
  EXPECT_EQ(seg.assignment.size(), n - removed);
  size_t total = 0;
  for (size_t s = 0; s < seg.num_segments(); ++s) {
    for (uint32_t idx : seg.members[s]) {
      EXPECT_LT(idx, n - removed);
    }
    total += seg.members[s].size();
  }
  EXPECT_EQ(total, n - removed);
}

TEST(SegmentationDeletionTest, RemoveAllIsSafe) {
  auto d = MakeAnalogDataset("glove-sim", Scale::kTiny, 4).value();
  SegmentationOptions opts;
  opts.target_segments = 3;
  auto seg = SegmentData(d, opts).value();
  seg.RemoveTrailingPoints(d.size() * 2);  // more than present
  EXPECT_TRUE(seg.assignment.empty());
  for (const auto& m : seg.members) EXPECT_TRUE(m.empty());
}

TEST(GlDeletionTest, ApplyDeletionsKeepsAccuracy) {
  EnvOptions opts;
  opts.num_segments = 5;
  auto env =
      std::move(BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
  GlEstimatorConfig config = GlEstimatorConfig::GlCnn();
  config.local_train.epochs = 12;
  config.global_train.epochs = 12;
  GlEstimator est(config);
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est.Train(ctx).ok());
  const double before = EvaluateSearch(&est, env.workload).qerror.median;

  // Delete the trailing 5% of the dataset.
  const size_t removed = env.dataset.size() / 20;
  env.dataset.Truncate(removed);
  ASSERT_TRUE(
      est.ApplyDeletions(env.dataset, &env.workload, removed, 11).ok());

  // Labels now reflect the shrunken dataset; accuracy stays bounded.
  const double after = EvaluateSearch(&est, env.workload).qerror.median;
  EXPECT_LT(after, std::max(4.0, 2.5 * before));
}

TEST(GlDeletionTest, RequiresConsistentTruncation) {
  EnvOptions opts;
  opts.num_segments = 4;
  auto env =
      std::move(BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
  GlEstimatorConfig config = GlEstimatorConfig::GlCnn();
  config.local_train.epochs = 5;
  config.global_train.epochs = 5;
  GlEstimator est(config);
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est.Train(ctx).ok());
  // Dataset NOT truncated: the size check must reject the call.
  EXPECT_FALSE(
      est.ApplyDeletions(env.dataset, &env.workload, 50, 11).ok());
}

TEST(GlDeletionTest, RequiresTrainedEstimator) {
  EnvOptions opts;
  opts.num_segments = 4;
  auto env =
      std::move(BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
  GlEstimator est(GlEstimatorConfig::GlCnn());
  EXPECT_FALSE(est.ApplyDeletions(env.dataset, &env.workload, 1, 1).ok());
}

}  // namespace
}  // namespace simcard
