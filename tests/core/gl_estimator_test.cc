// Integration tests for the GL estimator family on a tiny environment.
#include "core/gl_estimator.h"

#include <gtest/gtest.h>

#include "eval/harness.h"
#include "support/request_helpers.h"

namespace simcard {
namespace {

using testsupport::EstimateCard;

// A shared tiny environment; building it once keeps this suite fast.
const ExperimentEnv& SharedEnv() {
  static const ExperimentEnv* env = [] {
    EnvOptions opts;
    opts.num_segments = 6;
    return new ExperimentEnv(std::move(
        BuildEnvironment("glove-sim", Scale::kTiny, opts).value()));
  }();
  return *env;
}

GlEstimatorConfig FastConfig(GlEstimatorConfig config) {
  config.local_train.epochs = 15;
  config.global_train.epochs = 15;
  config.tuner.max_trials = 4;
  config.tuner.trial_epochs = 6;
  config.tuner.train_subsample = 200;
  config.tuner.val_subsample = 60;
  config.tune_per_segment = false;
  return config;
}

TEST(GlEstimatorTest, RequiresSegmentation) {
  GlEstimator est(FastConfig(GlEstimatorConfig::GlCnn()));
  const ExperimentEnv& env = SharedEnv();
  TrainContext ctx = MakeTrainContext(env);
  ctx.segmentation = nullptr;
  EXPECT_FALSE(est.Train(ctx).ok());
}

TEST(GlEstimatorTest, PresetsMatchTable2) {
  auto local_plus = GlEstimatorConfig::LocalPlus();
  EXPECT_FALSE(local_plus.use_global_model);
  EXPECT_TRUE(local_plus.auto_tune);
  EXPECT_TRUE(local_plus.use_cnn_query_tower);

  auto gl_mlp = GlEstimatorConfig::GlMlp();
  EXPECT_TRUE(gl_mlp.use_global_model);
  EXPECT_FALSE(gl_mlp.use_cnn_query_tower);
  EXPECT_FALSE(gl_mlp.auto_tune);

  auto gl_cnn = GlEstimatorConfig::GlCnn();
  EXPECT_TRUE(gl_cnn.use_cnn_query_tower);
  EXPECT_FALSE(gl_cnn.auto_tune);

  auto gl_plus = GlEstimatorConfig::GlPlus();
  EXPECT_TRUE(gl_plus.auto_tune);
}

TEST(GlEstimatorTest, TrainsAndEstimatesReasonably) {
  GlEstimator est(FastConfig(GlEstimatorConfig::GlCnn()));
  const ExperimentEnv& env = SharedEnv();
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est.Train(ctx).ok());
  EXPECT_EQ(est.num_local_models(), env.segmentation.num_segments());
  EXPECT_NE(est.global_model(), nullptr);
  EXPECT_GT(est.training_seconds(), 0.0);

  auto result = EvaluateSearch(&est, env.workload);
  EXPECT_LT(result.qerror.mean, 25.0);
  EXPECT_LT(result.qerror.median, 6.0);
}

TEST(GlEstimatorTest, LocalPlusEvaluatesAllSegments) {
  GlEstimator est(FastConfig(GlEstimatorConfig::LocalPlus()));
  const ExperimentEnv& env = SharedEnv();
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est.Train(ctx).ok());
  EXPECT_EQ(est.global_model(), nullptr);
  const float* q = env.workload.test_queries.Row(0);
  auto per_seg = est.EstimatePerSegment(q, 0.2f);
  EXPECT_EQ(per_seg.size(), env.segmentation.num_segments());
}

TEST(GlEstimatorTest, GlobalSelectsFewSegments) {
  GlEstimator est(FastConfig(GlEstimatorConfig::GlCnn()));
  const ExperimentEnv& env = SharedEnv();
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est.Train(ctx).ok());
  const double mean_selected = est.MeanSelectedSegments(env.workload);
  EXPECT_LT(mean_selected, env.segmentation.num_segments() * 0.7);
  EXPECT_GE(mean_selected, 1.0);
}

TEST(GlEstimatorTest, MissingRateLowWithPenalty) {
  GlEstimator est(FastConfig(GlEstimatorConfig::GlCnn()));
  const ExperimentEnv& env = SharedEnv();
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est.Train(ctx).ok());
  EXPECT_LT(est.MissingRate(env.workload), 0.25);
}

TEST(GlEstimatorTest, SumOfSegmentsEqualsSearchEstimate) {
  GlEstimator est(FastConfig(GlEstimatorConfig::GlCnn()));
  const ExperimentEnv& env = SharedEnv();
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est.Train(ctx).ok());
  const float* q = env.workload.test_queries.Row(1);
  const float tau = env.workload.test[1].thresholds[3].tau;
  double sum = 0.0;
  for (const SegmentEstimate& se : est.EstimatePerSegment(q, tau)) {
    sum += se.estimate;
  }
  EXPECT_NEAR(EstimateCard(est, q, tau), sum, 1e-9 + 1e-6 * sum);
}

TEST(GlEstimatorTest, EstimateMonotoneInTau) {
  GlEstimator est(FastConfig(GlEstimatorConfig::LocalPlus()));
  const ExperimentEnv& env = SharedEnv();
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est.Train(ctx).ok());
  // Local+ sums ALL local models, each monotone in tau, so the total is
  // monotone (with a global model, *selection* changes with tau, which can
  // make the summed estimate non-monotone even though each local is).
  const float* q = env.workload.test_queries.Row(2);
  double prev = -1.0;
  for (float tau = 0.02f; tau <= 0.4f; tau += 0.02f) {
    const double est_v = EstimateCard(est, q, tau);
    EXPECT_GE(est_v, prev * (1.0 - 1e-6));
    prev = est_v;
  }
}

TEST(GlEstimatorTest, ModelSizeIncludesCentroids) {
  GlEstimator est(FastConfig(GlEstimatorConfig::GlCnn()));
  const ExperimentEnv& env = SharedEnv();
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est.Train(ctx).ok());
  EXPECT_GT(est.ModelSizeBytes(),
            env.segmentation.centroids.size() * sizeof(float));
}

TEST(GlEstimatorTest, PenaltyAblationReducesMissingRate) {
  // Exp-6 / Figure 9: penalty reduces missed cardinality.
  const ExperimentEnv& env = SharedEnv();
  GlEstimatorConfig with = FastConfig(GlEstimatorConfig::GlCnn());
  with.use_penalty = true;
  GlEstimatorConfig without = FastConfig(GlEstimatorConfig::GlCnn());
  without.use_penalty = false;
  GlEstimator est_with(with);
  GlEstimator est_without(without);
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est_with.Train(ctx).ok());
  ASSERT_TRUE(est_without.Train(ctx).ok());
  // Allow slack: on a tiny dataset the effect is noisy, but the penalty
  // must never make missing drastically worse.
  EXPECT_LE(est_with.MissingRate(env.workload),
            est_without.MissingRate(env.workload) + 0.05);
}

TEST(GlEstimatorTest, IncrementalUpdatesKeepAccuracy) {
  // Section 5.3 / Exp-11: insert points, reroute, fine-tune; error must
  // stay bounded.
  EnvOptions opts;
  opts.num_segments = 5;
  auto env =
      std::move(BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
  GlEstimator est(FastConfig(GlEstimatorConfig::GlCnn()));
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est.Train(ctx).ok());
  const double before = EvaluateSearch(&est, env.workload).qerror.median;

  // Insert 5% new points drawn from the same distribution.
  const size_t n_new = env.dataset.size() / 20;
  Matrix updates =
      MakeAnalogUpdates("glove-sim", Scale::kTiny, n_new, env.seed).value();
  const uint32_t first_new = static_cast<uint32_t>(env.dataset.size());
  env.dataset.Append(updates);
  std::vector<uint32_t> new_rows(n_new);
  for (size_t i = 0; i < n_new; ++i) {
    new_rows[i] = first_new + static_cast<uint32_t>(i);
  }
  ASSERT_TRUE(est.ApplyUpdates(env.dataset, &env.workload, new_rows,
                               /*seed=*/17, /*fine_tune_epochs=*/3)
                  .ok());

  const double after = EvaluateSearch(&est, env.workload).qerror.median;
  EXPECT_LT(after, std::max(4.0, 2.5 * before));
}

}  // namespace
}  // namespace simcard
