#include "core/card_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace simcard {
namespace {

CardModelConfig MlpConfig(size_t query_dim = 8, size_t aux_dim = 4) {
  CardModelConfig config;
  config.query_dim = query_dim;
  config.use_cnn_query_tower = false;
  config.mlp_hidden = 16;
  config.query_embed = 8;
  config.tau_hidden = 8;
  config.tau_embed = 4;
  config.aux_dim = aux_dim;
  config.aux_hidden = 8;
  config.head_hidden = 16;
  return config;
}

TEST(CardModelTest, RejectsZeroQueryDim) {
  Rng rng(1);
  CardModelConfig config = MlpConfig();
  config.query_dim = 0;
  EXPECT_FALSE(CardModel::Build(config, &rng).ok());
}

TEST(CardModelTest, ForwardShape) {
  Rng rng(2);
  auto model = CardModel::Build(MlpConfig(), &rng).value();
  Matrix xq = Matrix::Gaussian(6, 8, 1.0f, &rng);
  Matrix xtau = Matrix::Gaussian(6, 1, 0.1f, &rng);
  Matrix xaux = Matrix::Gaussian(6, 4, 1.0f, &rng);
  Matrix y = model->Forward(xq, xtau, xaux);
  EXPECT_EQ(y.rows(), 6u);
  EXPECT_EQ(y.cols(), 1u);
}

TEST(CardModelTest, NoAuxTowerWhenAuxDimZero) {
  Rng rng(3);
  auto model = CardModel::Build(MlpConfig(8, 0), &rng).value();
  Matrix xq = Matrix::Gaussian(2, 8, 1.0f, &rng);
  Matrix xtau = Matrix::Gaussian(2, 1, 0.1f, &rng);
  Matrix y = model->Forward(xq, xtau, Matrix());
  EXPECT_EQ(y.rows(), 2u);
}

TEST(CardModelTest, EstimateCardIsPositiveAndFinite) {
  Rng rng(4);
  auto model = CardModel::Build(MlpConfig(), &rng).value();
  std::vector<float> q(8, 0.3f);
  std::vector<float> aux(4, 0.5f);
  const double est = model->EstimateCard(q.data(), 0.2f, aux.data());
  EXPECT_GT(est, 0.0);
  EXPECT_TRUE(std::isfinite(est));
}

TEST(CardModelTest, SetOutputBiasShiftsLogEstimateExactly) {
  Rng rng(5);
  auto model = CardModel::Build(MlpConfig(8, 0), &rng).value();
  std::vector<float> q(8, 0.2f);
  model->SetOutputBias(1.0f);
  const double est1 = model->EstimateCard(q.data(), 0.1f, nullptr);
  model->SetOutputBias(3.0f);
  const double est2 = model->EstimateCard(q.data(), 0.1f, nullptr);
  // The bias is purely additive in log space (unless the clamp engages).
  if (est2 < 1e10) {
    EXPECT_NEAR(std::log(est2) - std::log(est1), 2.0, 1e-4);
  }
}

TEST(CardModelTest, MonotoneInTau) {
  Rng rng(6);
  auto model = CardModel::Build(MlpConfig(), &rng).value();
  Rng data_rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> q(8);
    std::vector<float> aux(4);
    for (auto& v : q) v = static_cast<float>(data_rng.NextGaussian());
    for (auto& v : aux) v = data_rng.NextFloat();
    double prev = -1.0;
    for (float tau = 0.0f; tau <= 1.0f; tau += 0.05f) {
      const double est = model->EstimateCard(q.data(), tau, aux.data());
      EXPECT_GE(est, prev * (1.0 - 1e-6)) << "tau=" << tau;
      prev = est;
    }
  }
}

TEST(CardModelTest, TrainingFitsSyntheticCardFunction) {
  // card(q, tau) = round(1000 * tau * sigmoid(q[0])) — learnable from
  // (q, tau) alone.
  Rng rng(8);
  CardModelConfig config = MlpConfig(4, 0);
  auto model = CardModel::Build(config, &rng).value();

  Rng data_rng(9);
  const size_t n_queries = 50;
  Matrix queries = Matrix::Gaussian(n_queries, 4, 1.0f, &data_rng);
  std::vector<SampleRef> samples;
  for (uint32_t i = 0; i < n_queries; ++i) {
    for (int t = 1; t <= 8; ++t) {
      const float tau = 0.1f * t;
      const float s = 1.0f / (1.0f + std::exp(-queries.at(i, 0)));
      samples.push_back({i, tau, std::round(1000.0f * tau * s)});
    }
  }
  CardTrainOptions opts;
  opts.epochs = 120;
  opts.patience = 30;
  opts.seed = 10;
  TrainCardModel(model.get(), queries, nullptr, samples, opts);

  double qerr_sum = 0.0;
  for (const auto& s : samples) {
    const double est =
        model->EstimateCard(queries.Row(s.query_row), s.tau, nullptr);
    const double truth = std::max(0.1f, s.card);
    qerr_sum += std::max(est, truth) / std::max(0.1, std::min(est, truth));
  }
  EXPECT_LT(qerr_sum / samples.size(), 1.6);
}

TEST(CardModelTest, PooledForwardMatchesManualPoolingSemantics) {
  // For a single member, pooled forward == per-sample forward.
  Rng rng(11);
  auto model = CardModel::Build(MlpConfig(), &rng).value();
  Matrix xq = Matrix::Gaussian(1, 8, 1.0f, &rng);
  Matrix xaux = Matrix::Gaussian(1, 4, 1.0f, &rng);
  Matrix xtau(1, 1);
  xtau.at(0, 0) = 0.4f;
  const float per_sample = model->Forward(xq, xtau, xaux).at(0, 0);
  const float pooled = model->ForwardPooled(xq, 0.4f, xaux).at(0, 0);
  EXPECT_NEAR(per_sample, pooled, 1e-5f);
}

TEST(CardModelTest, PooledBackwardRuns) {
  Rng rng(12);
  auto model = CardModel::Build(MlpConfig(), &rng).value();
  Matrix xq = Matrix::Gaussian(5, 8, 1.0f, &rng);
  Matrix xaux = Matrix::Gaussian(5, 4, 1.0f, &rng);
  model->ForwardPooled(xq, 0.3f, xaux);
  Matrix grad(1, 1);
  grad.at(0, 0) = 1.0f;
  for (auto* p : model->Parameters()) p->ZeroGrad();
  model->BackwardPooled(grad);
  double grad_norm = 0.0;
  for (auto* p : model->Parameters()) grad_norm += p->grad().Norm();
  EXPECT_GT(grad_norm, 0.0);
}

TEST(CardModelTest, InputNormalizationPreservesMonotonicity) {
  Rng rng(13);
  auto model = CardModel::Build(MlpConfig(), &rng).value();
  model->SetInputNormalization(0.5f, 0.01f, std::vector<float>(4, 0.2f),
                               std::vector<float>(4, 0.1f));
  std::vector<float> q(8, 0.1f);
  std::vector<float> aux(4, 0.3f);
  double prev = -1.0;
  for (float tau = 0.4f; tau <= 0.6f; tau += 0.01f) {
    const double est = model->EstimateCard(q.data(), tau, aux.data());
    EXPECT_GE(est, prev * (1.0 - 1e-6));
    prev = est;
  }
}

TEST(CardModelTest, SerializationRoundTrip) {
  Rng rng(14);
  CardModelConfig config = MlpConfig();
  auto model = CardModel::Build(config, &rng).value();
  model->SetInputNormalization(0.1f, 0.05f, std::vector<float>(4, 1.0f),
                               std::vector<float>(4, 2.0f));
  std::vector<float> q(8, 0.7f);
  std::vector<float> aux(4, 0.2f);
  const double before = model->EstimateCard(q.data(), 0.3f, aux.data());

  Serializer out;
  model->Serialize(&out);

  Rng rng2(999);
  auto restored = CardModel::Build(config, &rng2).value();
  Deserializer in(out.bytes());
  ASSERT_TRUE(restored->Deserialize(&in).ok());
  EXPECT_NEAR(restored->EstimateCard(q.data(), 0.3f, aux.data()), before,
              1e-6 * before);
}

TEST(CardModelTest, CnnTowerVariantBuildsAndRuns) {
  Rng rng(15);
  CardModelConfig config = MlpConfig(32, 4);
  config.use_cnn_query_tower = true;
  config.qes = QesConfig::Default(32);
  auto model = CardModel::Build(config, &rng).value();
  Matrix xq = Matrix::Gaussian(3, 32, 1.0f, &rng);
  Matrix xtau = Matrix::Full(3, 1, 0.2f);
  Matrix xaux = Matrix::Gaussian(3, 4, 1.0f, &rng);
  Matrix y = model->Forward(xq, xtau, xaux);
  EXPECT_EQ(y.rows(), 3u);
  EXPECT_GT(model->NumScalars(), 100u);
}

}  // namespace
}  // namespace simcard
