#include "core/features.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace simcard {
namespace {

TEST(FeaturesTest, SampleDistanceRow) {
  Matrix samples(2, 2);
  samples.at(0, 0) = 3.0f;
  samples.at(0, 1) = 4.0f;
  samples.at(1, 0) = 1.0f;
  const float q[] = {0.0f, 0.0f};
  auto xd = SampleDistanceRow(q, samples, Metric::kL2);
  ASSERT_EQ(xd.size(), 2u);
  EXPECT_FLOAT_EQ(xd[0], 5.0f);
  EXPECT_FLOAT_EQ(xd[1], 1.0f);
}

TEST(FeaturesTest, BatchSampleFeaturesMatchRowVersion) {
  Rng rng(1);
  Matrix queries = Matrix::Gaussian(5, 4, 1.0f, &rng);
  Matrix samples = Matrix::Gaussian(7, 4, 1.0f, &rng);
  Matrix batch = BuildSampleDistanceFeatures(queries, samples, Metric::kL1);
  EXPECT_EQ(batch.rows(), 5u);
  EXPECT_EQ(batch.cols(), 7u);
  for (size_t r = 0; r < 5; ++r) {
    auto row = SampleDistanceRow(queries.Row(r), samples, Metric::kL1);
    for (size_t c = 0; c < 7; ++c) {
      EXPECT_FLOAT_EQ(batch.at(r, c), row[c]);
    }
  }
}

TEST(FeaturesTest, CentroidFeaturesMatchSegmentation) {
  auto d = MakeAnalogDataset("glove-sim", Scale::kTiny, 2).value();
  SegmentationOptions seg_opts;
  seg_opts.target_segments = 5;
  auto seg = SegmentData(d, seg_opts).value();
  Matrix queries = d.points().SliceRows(0, 4);
  Matrix xc = BuildCentroidDistanceFeatures(queries, seg, d.metric());
  EXPECT_EQ(xc.cols(), seg.num_segments());
  for (size_t r = 0; r < 4; ++r) {
    auto expected = seg.CentroidDistances(queries.Row(r), d.dim(), d.metric());
    for (size_t s = 0; s < seg.num_segments(); ++s) {
      EXPECT_FLOAT_EQ(xc.at(r, s), expected[s]);
    }
  }
}

TEST(FeaturesTest, GatherBatchAssemblesSamples) {
  Rng rng(3);
  Matrix queries = Matrix::Gaussian(4, 3, 1.0f, &rng);
  Matrix aux = Matrix::Gaussian(4, 2, 1.0f, &rng);
  std::vector<SampleRef> samples = {
      {2, 0.5f, 10.0f}, {0, 0.1f, 3.0f}, {2, 0.9f, 25.0f}};
  Batch batch = GatherBatch(queries, &aux, samples, 0, 3);
  EXPECT_EQ(batch.xq.rows(), 3u);
  EXPECT_FLOAT_EQ(batch.xq.at(0, 0), queries.at(2, 0));
  EXPECT_FLOAT_EQ(batch.xq.at(1, 2), queries.at(0, 2));
  EXPECT_FLOAT_EQ(batch.xtau.at(2, 0), 0.9f);
  EXPECT_FLOAT_EQ(batch.targets.at(0, 0), 10.0f);
  EXPECT_FLOAT_EQ(batch.xaux.at(2, 1), aux.at(2, 1));
}

TEST(FeaturesTest, GatherBatchWindow) {
  Rng rng(4);
  Matrix queries = Matrix::Gaussian(3, 2, 1.0f, &rng);
  std::vector<SampleRef> samples = {
      {0, 0.1f, 1.0f}, {1, 0.2f, 2.0f}, {2, 0.3f, 3.0f}, {0, 0.4f, 4.0f}};
  Batch batch = GatherBatch(queries, nullptr, samples, 1, 2);
  EXPECT_EQ(batch.xq.rows(), 2u);
  EXPECT_FLOAT_EQ(batch.targets.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(batch.targets.at(1, 0), 3.0f);
  EXPECT_TRUE(batch.xaux.empty());
}

}  // namespace
}  // namespace simcard
