// Robustness of model loading against malformed inputs: truncated files,
// bit flips in structural fields, and cross-model confusion must produce a
// Status error, never a crash or a silently-wrong model.
#include <gtest/gtest.h>

#include <cstdio>

#include "common/checked_file.h"
#include "core/gl_estimator.h"
#include "eval/harness.h"

namespace simcard {
namespace {

// ctest runs every test of this binary as its own parallel process, so any
// scratch file must carry the test name or concurrent tests clobber each
// other's bytes mid-read.
std::string ScratchPath(const char* stem) {
  const auto* info = testing::UnitTest::GetInstance()->current_test_info();
  return testing::TempDir() + "/" + stem + "." +
         (info != nullptr ? info->name() : "fixture") + ".bin";
}

// A trained, serialized GL model (bytes) shared by the tests.
const std::vector<uint8_t>& TrainedModelBytes() {
  static const std::vector<uint8_t>* bytes = [] {
    EnvOptions opts;
    opts.num_segments = 3;
    auto env = std::move(
        BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
    GlEstimatorConfig config = GlEstimatorConfig::GlCnn();
    config.local_train.epochs = 4;
    config.global_train.epochs = 4;
    GlEstimator est(config);
    TrainContext ctx = MakeTrainContext(env);
    EXPECT_TRUE(est.Train(ctx).ok());
    const std::string path = ScratchPath("robustness_model");
    EXPECT_TRUE(est.SaveToFile(path).ok());
    auto* out = new std::vector<uint8_t>();
    FILE* f = fopen(path.c_str(), "rb");
    fseek(f, 0, SEEK_END);
    out->resize(static_cast<size_t>(ftell(f)));
    fseek(f, 0, SEEK_SET);
    const size_t n = fread(out->data(), 1, out->size(), f);
    EXPECT_EQ(n, out->size());
    fclose(f);
    std::remove(path.c_str());
    return out;
  }();
  return *bytes;
}

Status LoadFromBytes(const std::vector<uint8_t>& bytes) {
  const std::string path = ScratchPath("robustness_variant");
  FILE* f = fopen(path.c_str(), "wb");
  if (!bytes.empty()) fwrite(bytes.data(), 1, bytes.size(), f);
  fclose(f);
  GlEstimator est(GlEstimatorConfig::GlCnn());
  Status st = est.LoadFromFile(path);
  std::remove(path.c_str());
  return st;
}

TEST(SerializationRobustnessTest, IntactBytesLoad) {
  EXPECT_TRUE(LoadFromBytes(TrainedModelBytes()).ok());
}

TEST(SerializationRobustnessTest, TruncationsFailGracefully) {
  const auto& bytes = TrainedModelBytes();
  for (double frac : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    std::vector<uint8_t> cut(
        bytes.begin(),
        bytes.begin() + static_cast<size_t>(frac * bytes.size()));
    Status st = LoadFromBytes(cut);
    EXPECT_FALSE(st.ok()) << "truncated to " << frac;
  }
}

TEST(SerializationRobustnessTest, EmptyFileFails) {
  EXPECT_FALSE(LoadFromBytes({}).ok());
}

TEST(SerializationRobustnessTest, WrongMagicFails) {
  auto bytes = TrainedModelBytes();
  // Byte 9 sits in the version field of the v2 header; flipping it must be
  // rejected (as must any flip in the magic itself, covered by the sweep).
  ASSERT_GT(bytes.size(), 12u);
  bytes[9] ^= 0xFF;
  EXPECT_FALSE(LoadFromBytes(bytes).ok());
}

TEST(SerializationRobustnessTest, TruncationAtEverySectionBoundaryFails) {
  const auto& bytes = TrainedModelBytes();
  auto reader_or = CheckedFileReader::FromBytes(bytes);
  ASSERT_TRUE(reader_or.ok()) << reader_or.status().ToString();
  const auto& sections = reader_or.value().sections();
  ASSERT_FALSE(sections.empty());
  // Cut exactly at the start and end of every section, and one byte short
  // of each boundary — each cut drops at least the last section's bytes.
  std::vector<size_t> cuts{sections.front().offset,
                           sections.front().offset - 1};
  for (const auto& info : sections) {
    cuts.push_back(info.offset);
    cuts.push_back(info.offset + info.size - 1);
  }
  for (size_t cut : cuts) {
    ASSERT_LT(cut, bytes.size());
    std::vector<uint8_t> truncated(bytes.begin(), bytes.begin() + cut);
    Status st = LoadFromBytes(truncated);
    EXPECT_FALSE(st.ok()) << "cut at " << cut << " of " << bytes.size();
  }
}

TEST(SerializationRobustnessTest, BitFlipSweepFailsStrictLoad) {
  const auto& bytes = TrainedModelBytes();
  // One flipped bit anywhere in the file must fail a strict load: header
  // flips break the magic/version/header CRC, payload flips break a section
  // CRC. Sampled stride keeps the test fast while still crossing every
  // section of the tiny model.
  for (size_t off = 0; off < bytes.size(); off += 97) {
    auto flipped = bytes;
    flipped[off] ^= 0x10;
    Status st = LoadFromBytes(flipped);
    EXPECT_FALSE(st.ok()) << "bit flip at offset " << off;
  }
}

TEST(SerializationRobustnessTest, DegradedLoadSurvivesLocalModelFlip) {
  const auto& bytes = TrainedModelBytes();
  auto reader_or = CheckedFileReader::FromBytes(bytes);
  ASSERT_TRUE(reader_or.ok());
  auto flipped = bytes;
  bool found = false;
  for (const auto& info : reader_or.value().sections()) {
    if (info.name == "local.0") {
      flipped[info.offset + info.size / 3] ^= 0x04;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  const std::string path = ScratchPath("robustness_degraded");
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_EQ(fwrite(flipped.data(), 1, flipped.size(), f), flipped.size());
  fclose(f);
  GlEstimator est(GlEstimatorConfig::GlCnn());
  EXPECT_FALSE(est.LoadFromFile(path).ok());  // strict refuses
  EXPECT_TRUE(
      est.LoadFromFile(path, GlEstimator::LoadMode::kDegraded).ok());
  EXPECT_EQ(est.num_quarantined_locals(), 1u);
  std::remove(path.c_str());
}

// Corruption sweep over the exact-members section added for mid-refresh
// snapshots: a strict load must refuse it, a degraded load must fall back
// to assignment-derived member lists that still cover every row.
TEST(SerializationRobustnessTest, MembersSectionFlipDegradesToDerivedLists) {
  const auto& bytes = TrainedModelBytes();
  auto reader_or = CheckedFileReader::FromBytes(bytes);
  ASSERT_TRUE(reader_or.ok());
  const CheckedFileReader::SectionInfo* members = nullptr;
  for (const auto& info : reader_or.value().sections()) {
    if (info.name == "members") members = &info;
  }
  ASSERT_NE(members, nullptr) << "model file lost the members section";

  // Sweep a few offsets across the section payload.
  for (size_t step : {size_t{0}, members->size / 2, members->size - 1}) {
    auto flipped = bytes;
    flipped[members->offset + step] ^= 0x20;
    EXPECT_FALSE(LoadFromBytes(flipped).ok()) << "offset " << step;

    const std::string path = ScratchPath("robustness_members");
    FILE* f = fopen(path.c_str(), "wb");
    ASSERT_EQ(fwrite(flipped.data(), 1, flipped.size(), f), flipped.size());
    fclose(f);
    GlEstimator est(GlEstimatorConfig::GlCnn());
    ASSERT_TRUE(
        est.LoadFromFile(path, GlEstimator::LoadMode::kDegraded).ok());
    std::remove(path.c_str());
    // Derived lists: every row present exactly once, in its assigned
    // segment — degraded, but internally consistent.
    const Segmentation& seg = est.segmentation();
    size_t total = 0;
    for (size_t s = 0; s < seg.num_segments(); ++s) {
      for (uint32_t row : seg.members[s]) {
        EXPECT_EQ(seg.assignment[row], s);
      }
      total += seg.members[s].size();
    }
    EXPECT_EQ(total, seg.assignment.size());
  }
}

TEST(SerializationRobustnessTest, TrailingGarbageIsHarmless) {
  // Extra bytes after a well-formed model are ignored by the reader
  // (forward compatibility for appended sections).
  auto bytes = TrainedModelBytes();
  bytes.push_back(0xAB);
  bytes.push_back(0xCD);
  EXPECT_TRUE(LoadFromBytes(bytes).ok());
}

}  // namespace
}  // namespace simcard
