// Robustness of model loading against malformed inputs: truncated files,
// bit flips in structural fields, and cross-model confusion must produce a
// Status error, never a crash or a silently-wrong model.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/gl_estimator.h"
#include "eval/harness.h"

namespace simcard {
namespace {

// A trained, serialized GL model (bytes) shared by the tests.
const std::vector<uint8_t>& TrainedModelBytes() {
  static const std::vector<uint8_t>* bytes = [] {
    EnvOptions opts;
    opts.num_segments = 3;
    auto env = std::move(
        BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
    GlEstimatorConfig config = GlEstimatorConfig::GlCnn();
    config.local_train.epochs = 4;
    config.global_train.epochs = 4;
    GlEstimator est(config);
    TrainContext ctx = MakeTrainContext(env);
    EXPECT_TRUE(est.Train(ctx).ok());
    const std::string path = testing::TempDir() + "/robustness_model.bin";
    EXPECT_TRUE(est.SaveToFile(path).ok());
    auto* out = new std::vector<uint8_t>();
    FILE* f = fopen(path.c_str(), "rb");
    fseek(f, 0, SEEK_END);
    out->resize(static_cast<size_t>(ftell(f)));
    fseek(f, 0, SEEK_SET);
    const size_t n = fread(out->data(), 1, out->size(), f);
    EXPECT_EQ(n, out->size());
    fclose(f);
    std::remove(path.c_str());
    return out;
  }();
  return *bytes;
}

Status LoadFromBytes(const std::vector<uint8_t>& bytes) {
  const std::string path = testing::TempDir() + "/robustness_variant.bin";
  FILE* f = fopen(path.c_str(), "wb");
  if (!bytes.empty()) fwrite(bytes.data(), 1, bytes.size(), f);
  fclose(f);
  GlEstimator est(GlEstimatorConfig::GlCnn());
  Status st = est.LoadFromFile(path);
  std::remove(path.c_str());
  return st;
}

TEST(SerializationRobustnessTest, IntactBytesLoad) {
  EXPECT_TRUE(LoadFromBytes(TrainedModelBytes()).ok());
}

TEST(SerializationRobustnessTest, TruncationsFailGracefully) {
  const auto& bytes = TrainedModelBytes();
  for (double frac : {0.0, 0.1, 0.5, 0.9, 0.999}) {
    std::vector<uint8_t> cut(
        bytes.begin(),
        bytes.begin() + static_cast<size_t>(frac * bytes.size()));
    Status st = LoadFromBytes(cut);
    EXPECT_FALSE(st.ok()) << "truncated to " << frac;
  }
}

TEST(SerializationRobustnessTest, EmptyFileFails) {
  EXPECT_FALSE(LoadFromBytes({}).ok());
}

TEST(SerializationRobustnessTest, WrongMagicFails) {
  auto bytes = TrainedModelBytes();
  // The magic string starts after the u64 length prefix; flip one byte.
  ASSERT_GT(bytes.size(), 12u);
  bytes[9] ^= 0xFF;
  EXPECT_FALSE(LoadFromBytes(bytes).ok());
}

TEST(SerializationRobustnessTest, TrailingGarbageIsHarmless) {
  // Extra bytes after a well-formed model are ignored by the reader
  // (forward compatibility for appended sections).
  auto bytes = TrainedModelBytes();
  bytes.push_back(0xAB);
  bytes.push_back(0xCD);
  EXPECT_TRUE(LoadFromBytes(bytes).ok());
}

}  // namespace
}  // namespace simcard
