// Property suite for the paper's third desired property (Section 2):
// estimates must be non-decreasing in the distance threshold tau. Checked
// across estimators and datasets via a parameterized sweep.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/harness.h"
#include "support/request_helpers.h"

namespace simcard {
namespace {

using testsupport::EstimateCard;

struct MonotoneCase {
  std::string estimator;
  std::string dataset;
};

class MonotonicityTest : public ::testing::TestWithParam<MonotoneCase> {};

TEST_P(MonotonicityTest, EstimateNonDecreasingInTau) {
  const MonotoneCase& c = GetParam();
  EnvOptions opts;
  opts.num_segments = 4;
  auto env =
      std::move(BuildEnvironment(c.dataset, Scale::kTiny, opts).value());
  auto est = std::move(
      MakeEstimatorByName(c.estimator, Scale::kTiny).value());
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est->Train(ctx).ok());

  // Sweep tau over the observed threshold range for several test queries.
  float tau_hi = 0.0f;
  for (const auto& lq : env.workload.test) {
    for (const auto& t : lq.thresholds) tau_hi = std::max(tau_hi, t.tau);
  }
  const size_t num_queries = std::min<size_t>(5, env.workload.test.size());
  for (size_t row = 0; row < num_queries; ++row) {
    const float* q = env.workload.test_queries.Row(row);
    double prev = -1.0;
    for (int step = 0; step <= 20; ++step) {
      const float tau = tau_hi * static_cast<float>(step) / 20.0f;
      const double estimate = EstimateCard(*est, q, tau);
      // Tolerate float jitter of one part in 1e-5.
      EXPECT_GE(estimate, prev * (1.0 - 1e-5) - 1e-9)
          << c.estimator << " on " << c.dataset << " at tau=" << tau;
      prev = estimate;
    }
  }
}

std::vector<MonotoneCase> MonotoneCases() {
  std::vector<MonotoneCase> cases;
  // Structurally monotone estimators. (Gated GL variants are excluded:
  // segment *selection* changes with tau, which the paper handles by
  // monotone per-segment models; Local+ covers the summed case.)
  for (const char* est :
       {"QES", "MLP", "CardNet", "Sampling (10%)", "Kernel-based",
        "Local+"}) {
    cases.push_back({est, "glove-sim"});
  }
  // Cross-metric spot checks for the core learned methods.
  cases.push_back({"QES", "imagenet-sim"});
  cases.push_back({"MLP", "youtube-sim"});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    EstimatorsAndDatasets, MonotonicityTest,
    ::testing::ValuesIn(MonotoneCases()),
    [](const ::testing::TestParamInfo<MonotoneCase>& info) {
      std::string name = info.param.estimator + "_" + info.param.dataset;
      std::string out;
      for (char ch : name) {
        if (std::isalnum(static_cast<unsigned char>(ch))) {
          out.push_back(ch);
        } else {
          out.push_back('_');
        }
      }
      return out;
    });

}  // namespace
}  // namespace simcard
