// Pooling-mode tests: the paper's sum pooling vs the mean-scaled extension
// (see CardModel::PooledMode).
#include <gtest/gtest.h>

#include <cmath>

#include "core/card_model.h"
#include "core/join_estimator.h"

namespace simcard {
namespace {

CardModelConfig SmallConfig() {
  CardModelConfig config;
  config.query_dim = 6;
  config.use_cnn_query_tower = false;
  config.mlp_hidden = 8;
  config.query_embed = 4;
  config.head_hidden = 8;
  return config;
}

TEST(PooledModeTest, SingleMemberModesAgree) {
  // With |Q| = 1, sum and mean-scaled pooling are the same computation
  // (up to the caller's x1 scaling).
  Rng rng(1);
  auto model = CardModel::Build(SmallConfig(), &rng).value();
  Matrix xq = Matrix::Gaussian(1, 6, 1.0f, &rng);
  const float sum_u =
      model->ForwardPooled(xq, 0.3f, Matrix(), CardModel::PooledMode::kSum)
          .at(0, 0);
  const float mean_u = model->ForwardPooled(
      xq, 0.3f, Matrix(), CardModel::PooledMode::kMeanScaled).at(0, 0);
  EXPECT_NEAR(sum_u, mean_u, 1e-5f);
}

TEST(PooledModeTest, MeanScaledIsInvariantToMemberDuplication) {
  // Duplicating every member leaves the mean-pooled embedding unchanged,
  // so the per-member estimate is identical; the caller's x|Q| scaling then
  // exactly doubles the set estimate — the correct behavior for a multiset
  // join. Sum pooling has no such guarantee.
  Rng rng(2);
  auto model = CardModel::Build(SmallConfig(), &rng).value();
  Matrix members = Matrix::Gaussian(4, 6, 1.0f, &rng);
  Matrix doubled(8, 6);
  for (size_t r = 0; r < 8; ++r) doubled.SetRow(r, members.Row(r % 4));
  const float u1 = model->ForwardPooled(
      members, 0.2f, Matrix(), CardModel::PooledMode::kMeanScaled).at(0, 0);
  const float u2 = model->ForwardPooled(
      doubled, 0.2f, Matrix(), CardModel::PooledMode::kMeanScaled).at(0, 0);
  EXPECT_NEAR(u1, u2, 1e-4f);
}

TEST(PooledModeTest, BackwardConsistentWithForwardScaling) {
  // Gradient check through mean-scaled pooling: perturbing a weight must
  // change the output consistently with the accumulated gradient.
  Rng rng(3);
  auto model = CardModel::Build(SmallConfig(), &rng).value();
  Matrix members = Matrix::Gaussian(3, 6, 1.0f, &rng);
  auto params = model->Parameters();
  for (auto* p : params) p->ZeroGrad();
  model->ForwardPooled(members, 0.4f, Matrix(),
                       CardModel::PooledMode::kMeanScaled);
  Matrix g(1, 1);
  g.at(0, 0) = 1.0f;
  model->BackwardPooled(g);

  nn::Parameter* probe = params[0];
  const size_t idx = 0;
  const double analytic = probe->grad().data()[idx];
  const double h = 1e-3;
  float* w = probe->value().data() + idx;
  const float saved = *w;
  *w = saved + static_cast<float>(h);
  const double up = model->ForwardPooled(members, 0.4f, Matrix(),
                                         CardModel::PooledMode::kMeanScaled)
                        .at(0, 0);
  *w = saved - static_cast<float>(h);
  const double down = model->ForwardPooled(members, 0.4f, Matrix(),
                                           CardModel::PooledMode::kMeanScaled)
                          .at(0, 0);
  *w = saved;
  EXPECT_NEAR(analytic, (up - down) / (2 * h), 5e-3);
}

TEST(PooledModeTest, FineTunePooledLearnsInMeanMode) {
  Rng rng(4);
  auto model = CardModel::Build(SmallConfig(), &rng).value();
  Matrix queries = Matrix::Gaussian(10, 6, 1.0f, &rng);
  std::vector<PooledSample> sets;
  for (int i = 0; i < 8; ++i) {
    sets.push_back({{0, 1, 2, 3}, 0.3f, 400.0f});  // avg 100 per member
  }
  PooledTrainOptions opts;
  opts.mode = CardModel::PooledMode::kMeanScaled;
  opts.epochs = 1;
  const double first = FineTunePooled(model.get(), queries, nullptr, sets,
                                      opts);
  opts.epochs = 40;
  const double later = FineTunePooled(model.get(), queries, nullptr, sets,
                                      opts);
  EXPECT_LT(later, first);
}

}  // namespace
}  // namespace simcard
