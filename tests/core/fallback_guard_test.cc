// Graceful degradation at inference time: invalid inputs answer 0, broken
// local models fall back to the per-segment sampling estimate, totals are
// clamped to [0, |D|], and every degradation is counted in the metrics
// registry under simcard.fallback.*.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>

#include "common/checked_file.h"
#include "common/fault.h"
#include "core/gl_estimator.h"
#include "core/segment_fallback.h"
#include "eval/harness.h"
#include "obs/metrics.h"
#include "support/request_helpers.h"

namespace simcard {
namespace {

using testsupport::EstimateCard;

constexpr float kNaNf = std::numeric_limits<float>::quiet_NaN();

// ---- SegmentFallback unit tests -------------------------------------------

Dataset GridDataset() {
  // 8 points on a line: (0,0), (1,0), ..., (7,0) under L2.
  Matrix points(8, 2);
  for (size_t i = 0; i < 8; ++i) {
    points.at(i, 0) = static_cast<float>(i);
    points.at(i, 1) = 0.0f;
  }
  return Dataset("grid", std::move(points), Metric::kL2, /*tau_max=*/8.0f);
}

TEST(SegmentFallbackTest, ScaledSampleCount) {
  Dataset data = GridDataset();
  std::vector<uint32_t> members{0, 1, 2, 3, 4, 5, 6, 7};
  Rng rng(3);
  // All 8 members retained: the estimate is the exact in-tau count.
  SegmentFallback fb = SegmentFallback::FromSegment(data, members, 8, &rng);
  EXPECT_EQ(fb.SampleCount(2), 8u);
  const float origin[2] = {0.0f, 0.0f};
  EXPECT_DOUBLE_EQ(fb.Estimate(origin, 2.5f, 2, Metric::kL2), 3.0);
  EXPECT_DOUBLE_EQ(fb.Estimate(origin, 100.0f, 2, Metric::kL2), 8.0);
  EXPECT_DOUBLE_EQ(fb.Estimate(origin, -1.0f, 2, Metric::kL2), 0.0);
}

TEST(SegmentFallbackTest, SubsampleScalesToPopulation) {
  Dataset data = GridDataset();
  std::vector<uint32_t> members{0, 1, 2, 3, 4, 5, 6, 7};
  Rng rng(4);
  SegmentFallback fb = SegmentFallback::FromSegment(data, members, 4, &rng);
  EXPECT_EQ(fb.SampleCount(2), 4u);
  EXPECT_EQ(fb.segment_size, 8u);
  const float origin[2] = {0.0f, 0.0f};
  // Every sample within a huge tau -> estimate equals the full population.
  EXPECT_DOUBLE_EQ(fb.Estimate(origin, 100.0f, 2, Metric::kL2), 8.0);
}

TEST(SegmentFallbackTest, EmptyAnswersZeroAndRoundTrips) {
  SegmentFallback fb;
  fb.segment_size = 42;
  const float origin[2] = {0.0f, 0.0f};
  EXPECT_DOUBLE_EQ(fb.Estimate(origin, 1.0f, 2, Metric::kL2), 0.0);

  Serializer out;
  fb.Serialize(&out);
  Deserializer in(out.bytes());
  SegmentFallback back;
  ASSERT_TRUE(back.Deserialize(&in).ok());
  EXPECT_EQ(back.segment_size, 42u);
  EXPECT_TRUE(back.samples.empty());
}

// ---- GlEstimator guard tests ----------------------------------------------

// One trained tiny estimator shared across tests (training dominates the
// test's cost).
GlEstimator& TrainedEstimator() {
  static GlEstimator* est = [] {
    EnvOptions opts;
    opts.num_segments = 3;
    auto env = std::move(
        BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
    GlEstimatorConfig config = GlEstimatorConfig::GlCnn();
    config.local_train.epochs = 4;
    config.global_train.epochs = 4;
    auto* e = new GlEstimator(config);
    TrainContext ctx = MakeTrainContext(env);
    EXPECT_TRUE(e->Train(ctx).ok());
    return e;
  }();
  return *est;
}

double DatasetSize(const GlEstimator& est) {
  return static_cast<double>(est.segmentation().assignment.size());
}

// Reads a fallback counter, running `fn` with metrics enabled.
template <typename Fn>
int64_t CounterDelta(const char* name, Fn fn) {
  const bool was_enabled = obs::MetricsEnabled();
  obs::SetMetricsEnabled(true);
  obs::Counter* counter = obs::GetCounter(name);
  const int64_t before = counter->Value();
  fn();
  obs::SetMetricsEnabled(was_enabled);
  return counter->Value() - before;
}

TEST(GlEstimatorGuardTest, NanQueryAnswersZero) {
  GlEstimator& est = TrainedEstimator();
  std::vector<float> q(16, 0.1f);
  q[3] = kNaNf;
  double out = -1.0;
  const int64_t delta =
      CounterDelta("simcard.fallback.invalid_query",
                   [&] { out = EstimateCard(est, q.data(), 0.2f); });
  EXPECT_EQ(out, 0.0);
  EXPECT_EQ(delta, 1);
}

TEST(GlEstimatorGuardTest, InfQueryAnswersZero) {
  GlEstimator& est = TrainedEstimator();
  std::vector<float> q(16, 0.1f);
  q[0] = std::numeric_limits<float>::infinity();
  EXPECT_EQ(EstimateCard(est, q.data(), 0.2f), 0.0);
}

TEST(GlEstimatorGuardTest, BadTauAnswersZero) {
  GlEstimator& est = TrainedEstimator();
  std::vector<float> q(16, 0.1f);
  double nan_out = -1.0, neg_out = -1.0;
  const int64_t delta =
      CounterDelta("simcard.fallback.invalid_tau", [&] {
        nan_out = EstimateCard(est, q.data(), kNaNf);
        neg_out = EstimateCard(est, q.data(), -0.5f);
      });
  EXPECT_EQ(nan_out, 0.0);
  EXPECT_EQ(neg_out, 0.0);
  EXPECT_EQ(delta, 2);
}

TEST(GlEstimatorGuardTest, InjectedLocalFaultFallsBackFinite) {
  GlEstimator& est = TrainedEstimator();
  std::vector<float> q(16, 0.1f);

  fault::FaultConfig config;
  config.sites = "gl.local_eval";  // every local evaluation goes NaN
  fault::Configure(config);
  double out = std::numeric_limits<double>::quiet_NaN();
  const int64_t delta =
      CounterDelta("simcard.fallback.local_nonfinite",
                   [&] { out = EstimateCard(est, q.data(), 0.3f); });
  fault::Disable();

  EXPECT_TRUE(std::isfinite(out));
  EXPECT_GE(out, 0.0);
  EXPECT_LE(out, DatasetSize(est));
  EXPECT_GE(delta, 1);  // at least one segment fell back

  // Disarmed again: the normal path answers without touching the counter.
  EXPECT_TRUE(std::isfinite(EstimateCard(est, q.data(), 0.3f)));
}

TEST(GlEstimatorGuardTest, EstimateNeverExceedsDatasetSize) {
  GlEstimator& est = TrainedEstimator();
  // A huge tau drives every model to its ceiling; the sum of per-segment
  // clamps already bounds by |D|, and the final clamp guarantees it.
  std::vector<float> q(16, 0.0f);
  const double out = EstimateCard(est, q.data(), 1e6f);
  EXPECT_TRUE(std::isfinite(out));
  EXPECT_LE(out, DatasetSize(est));
}

// ---- Degraded load --------------------------------------------------------

struct SavedModel {
  std::string path;
  std::vector<uint8_t> bytes;
};

SavedModel SaveTrainedModel() {
  SavedModel out;
  out.path = testing::TempDir() + "/fallback_guard_model.bin";
  EXPECT_TRUE(TrainedEstimator().SaveToFile(out.path).ok());
  auto reader_or = CheckedFileReader::Open(out.path);
  EXPECT_TRUE(reader_or.ok());
  FILE* f = fopen(out.path.c_str(), "rb");
  fseek(f, 0, SEEK_END);
  out.bytes.resize(static_cast<size_t>(ftell(f)));
  fseek(f, 0, SEEK_SET);
  EXPECT_EQ(fread(out.bytes.data(), 1, out.bytes.size(), f),
            out.bytes.size());
  fclose(f);
  return out;
}

void WriteBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_EQ(fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  fclose(f);
}

TEST(GlEstimatorGuardTest, DegradedLoadQuarantinesCorruptLocal) {
  SavedModel saved = SaveTrainedModel();
  // Corrupt one payload byte of "local.1".
  auto reader_or = CheckedFileReader::FromBytes(saved.bytes);
  ASSERT_TRUE(reader_or.ok());
  auto corrupted = saved.bytes;
  bool found = false;
  for (const auto& info : reader_or.value().sections()) {
    if (info.name == "local.1") {
      ASSERT_GT(info.size, 8u);
      corrupted[info.offset + info.size / 2] ^= 0x40;
      found = true;
    }
  }
  ASSERT_TRUE(found);
  WriteBytes(saved.path, corrupted);

  // Strict mode refuses the file outright.
  GlEstimator strict(GlEstimatorConfig::GlCnn());
  Status st = strict.LoadFromFile(saved.path);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("checksum"), std::string::npos);

  // Degraded mode quarantines the one bad local and keeps serving.
  GlEstimator degraded(GlEstimatorConfig::GlCnn());
  ASSERT_TRUE(
      degraded.LoadFromFile(saved.path, GlEstimator::LoadMode::kDegraded)
          .ok());
  EXPECT_EQ(degraded.num_quarantined_locals(), 1u);
  EXPECT_EQ(degraded.local_model(1), nullptr);

  std::vector<float> q(16, 0.1f);
  double out = std::numeric_limits<double>::quiet_NaN();
  const int64_t delta =
      CounterDelta("simcard.fallback.local_missing",
                   [&] { out = EstimateCard(degraded, q.data(), 0.5f); });
  EXPECT_TRUE(std::isfinite(out));
  EXPECT_GE(out, 0.0);
  EXPECT_LE(out, DatasetSize(degraded));
  (void)delta;  // the global router may not select segment 1 for this query

  std::remove(saved.path.c_str());
}

TEST(GlEstimatorGuardTest, CheckedRoundTripPreservesEstimates) {
  SavedModel saved = SaveTrainedModel();
  GlEstimator loaded(GlEstimatorConfig::GlCnn());
  ASSERT_TRUE(loaded.LoadFromFile(saved.path).ok());
  EXPECT_EQ(loaded.num_quarantined_locals(), 0u);

  GlEstimator& orig = TrainedEstimator();
  std::vector<float> q(16, 0.05f);
  for (float tau : {0.05f, 0.2f, 0.5f}) {
    EXPECT_DOUBLE_EQ(EstimateCard(loaded, q.data(), tau),
                     EstimateCard(orig, q.data(), tau))
        << "tau " << tau;
  }
  std::remove(saved.path.c_str());
}

}  // namespace
}  // namespace simcard
