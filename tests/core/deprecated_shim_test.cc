// The deprecated call shims exist for out-of-tree callers, so no migrated
// test exercises them anymore — this file is their only coverage, pinned
// to answer bit-for-bit what the request API answers. It is allowlisted in
// scripts/check_api_deprecations.sh; every other test goes through
// tests/support/request_helpers.h or builds EstimateRequest directly.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/sampling_estimator.h"
#include "core/gl_estimator.h"
#include "eval/harness.h"
#include "serve/estimation_service.h"
#include "serve/model_registry.h"
#include "support/request_helpers.h"

namespace simcard {
namespace {

using serve::EstimateResponse;
using serve::EstimationService;
using serve::ModelRegistry;
using serve::ServeOptions;

const ExperimentEnv& SharedEnv() {
  static const ExperimentEnv* env = [] {
    EnvOptions opts;
    opts.num_segments = 4;
    return new ExperimentEnv(std::move(
        BuildEnvironment("glove-sim", Scale::kTiny, opts).value()));
  }();
  return *env;
}

const GlEstimator& SharedGl() {
  static const GlEstimator* est = [] {
    GlEstimatorConfig config = GlEstimatorConfig::GlCnn();
    config.local_train.epochs = 8;
    config.global_train.epochs = 8;
    config.tuner.max_trials = 2;
    config.tuner.trial_epochs = 4;
    config.tune_per_segment = false;
    auto* e = new GlEstimator(config);
    TrainContext ctx = MakeTrainContext(SharedEnv());
    EXPECT_TRUE(e->Train(ctx).ok());
    return e;
  }();
  return *est;
}

TEST(DeprecatedShimTest, EstimatorSearchShimMatchesRequestApi) {
  SamplingEstimator est("full", 1.0);
  TrainContext ctx = MakeTrainContext(SharedEnv());
  ASSERT_TRUE(est.Train(ctx).ok());
  const float* q = SharedEnv().workload.test_queries.Row(0);
  for (float tau : {0.1f, 0.3f, 0.6f}) {
    EXPECT_DOUBLE_EQ(est.EstimateSearch(q, tau),
                     testsupport::EstimateCard(est, q, tau));
  }
}

TEST(DeprecatedShimTest, GlConstSearchShimMatchesRequestApi) {
  const GlEstimator& est = SharedGl();
  const Matrix& queries = SharedEnv().workload.test_queries;
  for (size_t row = 0; row < 3; ++row) {
    const float* q = queries.Row(row);
    EXPECT_DOUBLE_EQ(est.EstimateSearch(q, 0.4f, nullptr),
                     testsupport::EstimateCard(est, q, 0.4f));
  }
}

TEST(DeprecatedShimTest, ServiceSubmitShimsMatchRequestApi) {
  const GlEstimator& model = SharedGl();
  ModelRegistry registry;
  registry.Publish(std::shared_ptr<const GlEstimator>(
      std::shared_ptr<const GlEstimator>(), &model));
  EstimationService service(&registry, ServeOptions{});

  const Matrix& queries = SharedEnv().workload.test_queries;
  const float* q = queries.Row(1);
  std::vector<float> query(q, q + queries.cols());

  EstimateRequest request;
  request.query = std::span<const float>(query);
  request.tau = 0.5f;
  request.options.deadline_ms = 10000.0;
  EstimateResponse via_request = service.Submit(request).get();
  ASSERT_TRUE(via_request.status.ok()) << via_request.status.ToString();

  // Pointer+dim shim.
  EstimateResponse via_ptr =
      service.Submit(query.data(), query.size(), 0.5f).get();
  ASSERT_TRUE(via_ptr.status.ok()) << via_ptr.status.ToString();
  EXPECT_DOUBLE_EQ(via_ptr.estimate, via_request.estimate);

  // Owned-vector shim.
  EstimateResponse via_vec =
      service.Submit(std::vector<float>(query), 0.5f, 10000.0).get();
  ASSERT_TRUE(via_vec.status.ok()) << via_vec.status.ToString();
  EXPECT_DOUBLE_EQ(via_vec.estimate, via_request.estimate);
}

}  // namespace
}  // namespace simcard
