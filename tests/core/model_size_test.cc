#include "core/model_size.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace simcard {
namespace {

TEST(ModelSizeTest, BytesToMb) {
  EXPECT_DOUBLE_EQ(BytesToMb(1000000), 1.0);
  EXPECT_DOUBLE_EQ(BytesToMb(0), 0.0);
  EXPECT_DOUBLE_EQ(BytesToMb(2500000), 2.5);
}

TEST(ModelSizeTest, SampleModelBytes) {
  auto d = MakeAnalogDataset("glove-sim", Scale::kTiny, 1).value();
  const size_t bytes = SampleModelBytes(d, 0.01);
  const size_t rows = (d.size() + 99) / 100;
  EXPECT_EQ(bytes, rows * d.dim() * sizeof(float));
}

TEST(ModelSizeTest, SampleRowsForBytesRoundTrips) {
  auto d = MakeAnalogDataset("glove-sim", Scale::kTiny, 2).value();
  const size_t target = 32 * 1024;
  const size_t rows = SampleRowsForBytes(d, target);
  EXPECT_LE(rows * d.dim() * sizeof(float), target);
  EXPECT_GT((rows + 1) * d.dim() * sizeof(float), target);
}

TEST(ModelSizeTest, SampleRowsClampedToDataset) {
  auto d = MakeAnalogDataset("glove-sim", Scale::kTiny, 3).value();
  EXPECT_EQ(SampleRowsForBytes(d, size_t{1} << 40), d.size());
  EXPECT_EQ(SampleRowsForBytes(d, 1), 1u);  // at least one row
}

}  // namespace
}  // namespace simcard
