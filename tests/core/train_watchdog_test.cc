// Divergence watchdog: rollback semantics at the unit level, plus the full
// training loops recovering from (or giving up on) injected NaN losses.
#include "core/train_watchdog.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/fault.h"
#include "core/card_model.h"
#include "core/features.h"
#include "core/global_model.h"
#include "eval/harness.h"
#include "obs/training_observer.h"
#include "workload/labels.h"

namespace simcard {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

nn::Parameter MakeParam(float fill) {
  Matrix m(2, 2);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 2; ++c) m.at(r, c) = fill;
  }
  return nn::Parameter("w", std::move(m));
}

TEST(DivergenceWatchdogTest, GoodEpochsCheckpoint) {
  nn::Parameter p = MakeParam(1.0f);
  DivergenceWatchdog dog(WatchdogOptions{}, {&p}, "test");
  float lr = 0.1f;
  EXPECT_EQ(dog.Observe(0, 2.0, &lr), DivergenceWatchdog::Verdict::kOk);
  p.value().at(0, 0) = 5.0f;  // epoch 1's update
  EXPECT_EQ(dog.Observe(1, 1.0, &lr), DivergenceWatchdog::Verdict::kOk);
  EXPECT_EQ(lr, 0.1f);
  EXPECT_EQ(dog.retries(), 0u);
}

TEST(DivergenceWatchdogTest, NanLossRollsBackAndHalvesLr) {
  nn::Parameter p = MakeParam(1.0f);
  DivergenceWatchdog dog(WatchdogOptions{}, {&p}, "test");
  float lr = 0.1f;
  ASSERT_EQ(dog.Observe(0, 2.0, &lr), DivergenceWatchdog::Verdict::kOk);
  p.value().at(0, 0) = 777.0f;  // the poisoned update
  EXPECT_EQ(dog.Observe(1, kNaN, &lr),
            DivergenceWatchdog::Verdict::kRolledBack);
  EXPECT_EQ(p.value().at(0, 0), 1.0f);  // restored to the epoch-0 checkpoint
  EXPECT_FLOAT_EQ(lr, 0.05f);
  EXPECT_EQ(dog.retries(), 1u);
}

TEST(DivergenceWatchdogTest, RollbackBeforeFirstGoodEpochUsesInitialState) {
  nn::Parameter p = MakeParam(3.0f);
  DivergenceWatchdog dog(WatchdogOptions{}, {&p}, "test");
  float lr = 0.2f;
  p.value().at(1, 1) = -9.0f;
  EXPECT_EQ(dog.Observe(0, kNaN, &lr),
            DivergenceWatchdog::Verdict::kRolledBack);
  EXPECT_EQ(p.value().at(1, 1), 3.0f);  // construction-time snapshot
}

TEST(DivergenceWatchdogTest, ExplodingFiniteLossCountsAsDivergence) {
  nn::Parameter p = MakeParam(1.0f);
  WatchdogOptions options;
  options.explode_factor = 10.0;
  DivergenceWatchdog dog(options, {&p}, "test");
  float lr = 0.1f;
  ASSERT_EQ(dog.Observe(0, 1.0, &lr), DivergenceWatchdog::Verdict::kOk);
  // 50 > 10 * (1 + 1): divergent despite being finite.
  EXPECT_EQ(dog.Observe(1, 50.0, &lr),
            DivergenceWatchdog::Verdict::kRolledBack);
  // 15 <= 10 * (1 + 1): merely bad, not divergent.
  EXPECT_EQ(dog.Observe(2, 15.0, &lr), DivergenceWatchdog::Verdict::kOk);
}

TEST(DivergenceWatchdogTest, RetriesExhaustGracefully) {
  nn::Parameter p = MakeParam(1.0f);
  WatchdogOptions options;
  options.max_retries = 2;
  DivergenceWatchdog dog(options, {&p}, "seg7");
  float lr = 0.1f;
  EXPECT_EQ(dog.Observe(0, kNaN, &lr),
            DivergenceWatchdog::Verdict::kRolledBack);
  EXPECT_EQ(dog.Observe(1, kNaN, &lr),
            DivergenceWatchdog::Verdict::kRolledBack);
  EXPECT_EQ(dog.Observe(2, kNaN, &lr),
            DivergenceWatchdog::Verdict::kExhausted);
  Status st = dog.ExhaustedStatus();
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("seg7"), std::string::npos);
  EXPECT_NE(st.ToString().find("diverg"), std::string::npos);
}

TEST(DivergenceWatchdogTest, DisabledWatchdogNeverIntervenes) {
  nn::Parameter p = MakeParam(1.0f);
  WatchdogOptions options;
  options.enabled = false;
  DivergenceWatchdog dog(options, {&p}, "test");
  float lr = 0.1f;
  EXPECT_EQ(dog.Observe(0, kNaN, &lr), DivergenceWatchdog::Verdict::kOk);
  EXPECT_EQ(lr, 0.1f);
}

// ---- Training loops under injected NaN losses -----------------------------

// Synthetic learnable workload (same shape as the card_model tests):
// card(q, tau) = round(1000 * tau * sigmoid(q[0])).
struct TrainFixture {
  Matrix queries;
  std::vector<SampleRef> samples;
  std::unique_ptr<CardModel> model;

  TrainFixture() {
    Rng data_rng(9);
    queries = Matrix::Gaussian(40, 4, 1.0f, &data_rng);
    for (uint32_t i = 0; i < queries.rows(); ++i) {
      for (int t = 1; t <= 6; ++t) {
        const float tau = 0.1f * static_cast<float>(t);
        const float s = 1.0f / (1.0f + std::exp(-queries.at(i, 0)));
        samples.push_back({i, tau, std::round(1000.0f * tau * s)});
      }
    }
    CardModelConfig config;
    config.query_dim = 4;
    config.use_cnn_query_tower = false;
    config.mlp_hidden = 16;
    config.query_embed = 8;
    config.aux_dim = 0;
    config.head_hidden = 16;
    Rng rng(11);
    model = std::move(CardModel::Build(config, &rng).value());
  }
};

class WatchdogObserverProbe : public obs::TrainingObserver {
 public:
  void OnEpochEnd(const std::string&, size_t, double, double) override {}
  void OnDivergence(const std::string& tag, size_t, double loss, size_t retry,
                    float) override {
    ++divergences;
    last_tag = tag;
    last_retry = retry;
    saw_nonfinite = saw_nonfinite || !std::isfinite(loss);
  }
  int divergences = 0;
  size_t last_retry = 0;
  std::string last_tag;
  bool saw_nonfinite = false;
};

TEST(TrainWatchdogIntegrationTest, RecoverfromSingleNanEpoch) {
  TrainFixture fx;
  WatchdogObserverProbe probe;
  obs::AddTrainingObserver(&probe);
  fault::FaultConfig config;
  config.sites = "train.nan_loss";
  config.max_injections = 1;
  fault::Configure(config);

  CardTrainOptions opts;
  opts.epochs = 8;
  opts.observer_tag = "watchdog-recover";
  auto loss_or = TrainCardModel(fx.model.get(), fx.queries, nullptr,
                                fx.samples, opts);
  fault::Disable();
  obs::RemoveTrainingObserver(&probe);

  ASSERT_TRUE(loss_or.ok()) << loss_or.status().ToString();
  EXPECT_TRUE(std::isfinite(loss_or.value()));
  EXPECT_EQ(probe.divergences, 1);
  EXPECT_EQ(probe.last_tag, "watchdog-recover");
  EXPECT_TRUE(probe.saw_nonfinite);
  // The recovered model must estimate finite values.
  EXPECT_TRUE(std::isfinite(
      fx.model->EstimateCard(fx.queries.Row(0), 0.1f, nullptr)));
}

TEST(TrainWatchdogIntegrationTest, PersistentNanExhaustsRetries) {
  TrainFixture fx;
  fault::FaultConfig config;
  config.sites = "train.nan_loss";  // every epoch goes NaN
  fault::Configure(config);

  CardTrainOptions opts;
  opts.epochs = 20;
  opts.watchdog.max_retries = 2;
  auto loss_or = TrainCardModel(fx.model.get(), fx.queries, nullptr,
                                fx.samples, opts);
  fault::Disable();

  ASSERT_FALSE(loss_or.ok());
  EXPECT_NE(loss_or.status().ToString().find("diverg"), std::string::npos);
  // Rolled back, not poisoned: weights still produce finite estimates.
  EXPECT_TRUE(std::isfinite(
      fx.model->EstimateCard(fx.queries.Row(0), 0.1f, nullptr)));
}

TEST(TrainWatchdogIntegrationTest, GlobalModelRecoversToo) {
  ExperimentEnv env = std::move(
      BuildEnvironment("glove-sim", Scale::kTiny, EnvOptions{}).value());
  const Matrix xc = BuildCentroidDistanceFeatures(
      env.workload.train_queries, env.segmentation, env.dataset.metric());
  GlobalModelConfig config;
  config.query_dim = env.dataset.dim();
  config.num_segments = env.segmentation.num_segments();
  config.use_cnn_query_tower = false;
  config.mlp_hidden = 16;
  config.query_embed = 8;
  config.aux_hidden = 8;
  config.head_hidden = 16;
  Rng rng(5);
  auto model = std::move(GlobalModel::Build(config, &rng).value());
  GlobalLabels labels = BuildGlobalLabels(env.workload.train,
                                          config.num_segments);

  fault::FaultConfig fconfig;
  fconfig.sites = "train.nan_loss";
  fconfig.max_injections = 1;
  fault::Configure(fconfig);
  GlobalTrainOptions opts;
  opts.epochs = 6;
  auto loss_or = TrainGlobalModel(model.get(), env.workload.train_queries, xc,
                                  labels, opts);
  fault::Disable();

  ASSERT_TRUE(loss_or.ok()) << loss_or.status().ToString();
  EXPECT_TRUE(std::isfinite(loss_or.value()));
  const float* q = env.workload.train_queries.Row(0);
  for (float p : model->Probabilities(q, 0.1f, xc.Row(0))) {
    EXPECT_TRUE(std::isfinite(p));
  }
}

}  // namespace
}  // namespace simcard
