#include "core/global_model.h"

#include <gtest/gtest.h>

#include "core/features.h"
#include "eval/harness.h"

namespace simcard {
namespace {

GlobalModelConfig SmallConfig(size_t query_dim, size_t num_segments) {
  GlobalModelConfig config;
  config.query_dim = query_dim;
  config.num_segments = num_segments;
  config.use_cnn_query_tower = false;
  config.mlp_hidden = 16;
  config.query_embed = 8;
  config.tau_hidden = 8;
  config.tau_embed = 4;
  config.aux_hidden = 8;
  config.head_hidden = 16;
  return config;
}

TEST(GlobalModelTest, RejectsBadConfig) {
  Rng rng(1);
  EXPECT_FALSE(GlobalModel::Build(SmallConfig(0, 4), &rng).ok());
  EXPECT_FALSE(GlobalModel::Build(SmallConfig(8, 0), &rng).ok());
}

TEST(GlobalModelTest, LogitsShape) {
  Rng rng(2);
  auto model = GlobalModel::Build(SmallConfig(8, 5), &rng).value();
  Matrix xq = Matrix::Gaussian(3, 8, 1.0f, &rng);
  Matrix xtau = Matrix::Full(3, 1, 0.2f);
  Matrix xc = Matrix::Gaussian(3, 5, 1.0f, &rng);
  Matrix logits = model->ForwardLogits(xq, xtau, xc);
  EXPECT_EQ(logits.rows(), 3u);
  EXPECT_EQ(logits.cols(), 5u);
}

TEST(GlobalModelTest, ProbabilitiesInUnitInterval) {
  Rng rng(3);
  auto model = GlobalModel::Build(SmallConfig(8, 4), &rng).value();
  std::vector<float> q(8, 0.5f);
  std::vector<float> xc(4, 0.3f);
  auto probs = model->Probabilities(q.data(), 0.2f, xc.data());
  ASSERT_EQ(probs.size(), 4u);
  for (float p : probs) {
    EXPECT_GT(p, 0.0f);
    EXPECT_LT(p, 1.0f);
  }
}

TEST(GlobalModelTest, ProbabilitiesMonotoneInTau) {
  // Section 5.1: the learnable threshold before the sigmoid makes the
  // output probability monotonic with the original threshold.
  Rng rng(4);
  auto model = GlobalModel::Build(SmallConfig(8, 4), &rng).value();
  Rng data_rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> q(8);
    std::vector<float> xc(4);
    for (auto& v : q) v = static_cast<float>(data_rng.NextGaussian());
    for (auto& v : xc) v = data_rng.NextFloat();
    std::vector<float> prev(4, -1.0f);
    for (float tau = 0.0f; tau <= 1.0f; tau += 0.1f) {
      auto probs = model->Probabilities(q.data(), tau, xc.data());
      for (size_t s = 0; s < 4; ++s) {
        EXPECT_GE(probs[s], prev[s] - 1e-6f);
        prev[s] = probs[s];
      }
    }
  }
}

TEST(GlobalModelTest, SelectSegmentsThresholdAndFallback) {
  Rng rng(6);
  GlobalModelConfig config = SmallConfig(8, 3);
  config.sigma = 0.5f;
  auto model = GlobalModel::Build(config, &rng).value();
  EXPECT_EQ(model->SelectSegments({0.9f, 0.2f, 0.6f}),
            (std::vector<size_t>{0, 2}));
  // Fallback: nothing above sigma -> single argmax.
  EXPECT_EQ(model->SelectSegments({0.1f, 0.4f, 0.2f}),
            (std::vector<size_t>{1}));
}

TEST(GlobalModelTest, TrainingLearnsRouting) {
  // End-to-end on a tiny environment: after training, the argmax segment
  // should contain similar objects for most test samples.
  EnvOptions env_opts;
  env_opts.num_segments = 6;
  auto env =
      std::move(BuildEnvironment("glove-sim", Scale::kTiny, env_opts).value());
  const size_t n_seg = env.segmentation.num_segments();
  GlobalModelConfig config = SmallConfig(env.dataset.dim(), n_seg);
  Rng rng(7);
  auto model = GlobalModel::Build(config, &rng).value();

  Matrix xc = BuildCentroidDistanceFeatures(env.workload.train_queries,
                                            env.segmentation,
                                            env.dataset.metric());
  GlobalLabels labels = BuildGlobalLabels(env.workload.train, n_seg);
  GlobalTrainOptions opts;
  opts.epochs = 30;
  TrainGlobalModel(model.get(), env.workload.train_queries, xc, labels, opts);

  Matrix xct = BuildCentroidDistanceFeatures(env.workload.test_queries,
                                             env.segmentation,
                                             env.dataset.metric());
  size_t hits = 0;
  size_t total = 0;
  for (const auto& lq : env.workload.test) {
    const float* q = env.workload.test_queries.Row(lq.row);
    for (const auto& t : lq.thresholds) {
      if (t.card <= 0.0f) continue;
      auto probs = model->Probabilities(q, t.tau, xct.Row(lq.row));
      size_t best = 0;
      for (size_t s = 1; s < n_seg; ++s) {
        if (probs[s] > probs[best]) best = s;
      }
      hits += t.seg_cards[best] > 0.0f;
      ++total;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(hits) / total, 0.8);
}

TEST(GlobalModelTest, SerializationRoundTrip) {
  Rng rng(8);
  GlobalModelConfig config = SmallConfig(8, 4);
  auto model = GlobalModel::Build(config, &rng).value();
  model->SetInputNormalization(0.2f, 0.1f, std::vector<float>(4, 0.5f),
                               std::vector<float>(4, 0.2f));
  std::vector<float> q(8, 0.3f);
  std::vector<float> xc(4, 0.4f);
  auto before = model->Probabilities(q.data(), 0.25f, xc.data());

  Serializer out;
  model->Serialize(&out);
  Rng rng2(99);
  auto restored = GlobalModel::Build(config, &rng2).value();
  Deserializer in(out.bytes());
  ASSERT_TRUE(restored->Deserialize(&in).ok());
  auto after = restored->Probabilities(q.data(), 0.25f, xc.data());
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_NEAR(before[s], after[s], 1e-6f);
  }
}

}  // namespace
}  // namespace simcard
