#include "core/join_estimator.h"

#include <gtest/gtest.h>

#include <cmath>
#include "common/stopwatch.h"

#include "eval/harness.h"
#include "support/request_helpers.h"

namespace simcard {
namespace {

using testsupport::EstimateCard;

struct JoinEnv {
  ExperimentEnv env;
  JoinWorkload joins;
};

const JoinEnv& SharedJoinEnv() {
  static const JoinEnv* shared = [] {
    auto* out = new JoinEnv;
    EnvOptions opts;
    opts.num_segments = 5;
    out->env = std::move(
        BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
    JoinWorkloadOptions jopts;
    jopts.num_train_sets = 20;
    jopts.num_test_sets = 4;
    jopts.thresholds_per_set = 5;
    out->joins = BuildJoinWorkload(out->env.workload,
                                   out->env.segmentation.num_segments(),
                                   jopts)
                     .value();
    return out;
  }();
  return *shared;
}

CnnJoinEstimator::Config FastCnnJoin() {
  CnnJoinEstimator::Config config;
  config.base.train.epochs = 12;
  config.pooled.epochs = 3;
  return config;
}

GlJoinEstimator::Config FastGlJoin(bool cnn) {
  GlJoinEstimator::Config config =
      cnn ? GlJoinEstimator::Config::GlJoinPlus()
          : GlJoinEstimator::Config::GlJoin();
  config.base.local_train.epochs = 12;
  config.base.global_train.epochs = 12;
  config.base.auto_tune = false;  // keep the test fast
  config.pooled.epochs = 3;
  return config;
}

TEST(CnnJoinTest, FineTuneRequiresTraining) {
  CnnJoinEstimator est(FastCnnJoin());
  const JoinEnv& je = SharedJoinEnv();
  TrainContext ctx = MakeTrainContext(je.env);
  EXPECT_FALSE(est.FineTuneOnJoins(ctx, je.joins).ok());
}

TEST(CnnJoinTest, TrainsAndEstimatesJoins) {
  CnnJoinEstimator est(FastCnnJoin());
  const JoinEnv& je = SharedJoinEnv();
  TrainContext ctx = MakeTrainContext(je.env);
  ASSERT_TRUE(est.Train(ctx).ok());
  ASSERT_TRUE(est.FineTuneOnJoins(ctx, je.joins).ok());
  auto result = EvaluateJoin(&est, je.env.workload, je.joins.test_buckets[0]);
  EXPECT_TRUE(std::isfinite(result.qerror.mean));
  EXPECT_LT(result.qerror.median, 30.0);
}

TEST(CnnJoinTest, JoinEstimateBoundedByQSizeTimesN) {
  CnnJoinEstimator est(FastCnnJoin());
  const JoinEnv& je = SharedJoinEnv();
  TrainContext ctx = MakeTrainContext(je.env);
  ASSERT_TRUE(est.Train(ctx).ok());
  const auto& js = je.joins.test_buckets[0][0];
  const double estimate =
      est.EstimateJoin(je.env.workload.test_queries, js.query_rows, js.tau);
  EXPECT_LE(estimate, static_cast<double>(js.query_rows.size()) *
                          je.env.dataset.size());
  EXPECT_GE(estimate, 0.0);
}

TEST(GlJoinTest, PresetsMatchTable2) {
  auto gl_join = GlJoinEstimator::Config::GlJoin();
  EXPECT_FALSE(gl_join.base.use_cnn_query_tower);
  auto gl_join_plus = GlJoinEstimator::Config::GlJoinPlus();
  EXPECT_TRUE(gl_join_plus.base.use_cnn_query_tower);
  EXPECT_TRUE(gl_join_plus.base.auto_tune);
}

TEST(GlJoinTest, TrainsRoutesAndEstimates) {
  GlJoinEstimator est(FastGlJoin(/*cnn=*/true));
  const JoinEnv& je = SharedJoinEnv();
  TrainContext ctx = MakeTrainContext(je.env);
  ASSERT_TRUE(est.Train(ctx).ok());
  ASSERT_TRUE(est.FineTuneOnJoins(ctx, je.joins).ok());
  auto result = EvaluateJoin(&est, je.env.workload, je.joins.test_buckets[0]);
  EXPECT_TRUE(std::isfinite(result.qerror.mean));
  EXPECT_LT(result.qerror.median, 30.0);
}

TEST(GlJoinTest, BatchFasterThanPerQueryOnLargeSets) {
  // Exp-13: pooled evaluation beats per-query evaluation.
  GlJoinEstimator est(FastGlJoin(/*cnn=*/true));
  const JoinEnv& je = SharedJoinEnv();
  TrainContext ctx = MakeTrainContext(je.env);
  ASSERT_TRUE(est.Train(ctx).ok());

  const auto& js = je.joins.test_buckets[0][0];
  Stopwatch watch;
  for (int rep = 0; rep < 5; ++rep) {
    est.EstimateJoin(je.env.workload.test_queries, js.query_rows, js.tau);
  }
  const double batch_ms = watch.ElapsedMillis();
  watch.Restart();
  for (int rep = 0; rep < 5; ++rep) {
    // Per-query path: sum of individual search estimates (GL+ style).
    double total = 0.0;
    for (uint32_t row : js.query_rows) {
      total += EstimateCard(est, je.env.workload.test_queries.Row(row),
                            js.tau);
    }
    (void)total;
  }
  const double per_query_ms = watch.ElapsedMillis();
  EXPECT_LT(batch_ms, per_query_ms);
}

TEST(GlJoinTest, SearchEstimatesDelegateToGl) {
  GlJoinEstimator est(FastGlJoin(/*cnn=*/false));
  const JoinEnv& je = SharedJoinEnv();
  TrainContext ctx = MakeTrainContext(je.env);
  ASSERT_TRUE(est.Train(ctx).ok());
  const float* q = je.env.workload.test_queries.Row(0);
  EXPECT_NEAR(EstimateCard(est, q, 0.2f), EstimateCard(*est.gl(), q, 0.2f),
              1e-9);
}

TEST(FineTunePooledTest, EmptySetsIsNoop) {
  Rng rng(1);
  CardModelConfig config;
  config.query_dim = 4;
  config.use_cnn_query_tower = false;
  auto model = CardModel::Build(config, &rng).value();
  PooledTrainOptions opts;
  EXPECT_EQ(FineTunePooled(model.get(), Matrix(2, 4), nullptr, {}, opts), 0.0);
}

TEST(FineTunePooledTest, ReducesJoinLossOnToyData) {
  // One fixed member multiset whose target is far from the initial output:
  // a few pooled epochs must reduce the hybrid loss.
  Rng rng(2);
  CardModelConfig config;
  config.query_dim = 4;
  config.use_cnn_query_tower = false;
  config.mlp_hidden = 8;
  config.query_embed = 4;
  config.head_hidden = 8;
  auto model = CardModel::Build(config, &rng).value();
  Matrix queries = Matrix::Gaussian(10, 4, 1.0f, &rng);
  std::vector<PooledSample> sets;
  for (int i = 0; i < 8; ++i) {
    sets.push_back({{0, 1, 2, 3, 4}, 0.3f, 500.0f});
  }
  PooledTrainOptions opts;
  opts.epochs = 1;
  const double first = FineTunePooled(model.get(), queries, nullptr, sets,
                                      opts);
  opts.epochs = 30;
  const double later = FineTunePooled(model.get(), queries, nullptr, sets,
                                      opts);
  EXPECT_LT(later, first);
}

}  // namespace
}  // namespace simcard
