#include "core/local_model.h"

#include <gtest/gtest.h>

#include "core/features.h"
#include "eval/harness.h"

namespace simcard {
namespace {

struct LocalEnv {
  ExperimentEnv env;
  Matrix xc;
  CardModelConfig config;
};

LocalEnv MakeLocalEnv() {
  LocalEnv out;
  EnvOptions opts;
  opts.num_segments = 5;
  out.env =
      std::move(BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
  out.xc = BuildCentroidDistanceFeatures(out.env.workload.train_queries,
                                         out.env.segmentation,
                                         out.env.dataset.metric());
  out.config.query_dim = out.env.dataset.dim();
  out.config.use_cnn_query_tower = false;
  out.config.mlp_hidden = 16;
  out.config.query_embed = 8;
  out.config.aux_dim = out.env.segmentation.num_segments();
  out.config.aux_hidden = 8;
  out.config.head_hidden = 16;
  return out;
}

TEST(LocalModelTest, BuildsWithSegmentIndex) {
  LocalEnv le = MakeLocalEnv();
  Rng rng(1);
  auto local = LocalModel::Build(3, le.config, &rng).value();
  EXPECT_EQ(local->segment_index(), 3u);
  EXPECT_GT(local->NumScalars(), 0u);
}

TEST(LocalModelTest, TrainFitsSegmentCards) {
  LocalEnv le = MakeLocalEnv();
  Rng rng(2);
  const size_t seg = 0;
  auto local = LocalModel::Build(seg, le.config, &rng).value();
  CardTrainOptions opts;
  opts.epochs = 40;
  local->Train(le.env.workload.train_queries, le.xc, le.env.workload.train,
               0.2, opts);
  // Median q-error on this segment's own (train) positives should be small.
  std::vector<double> qerrs;
  for (const auto& lq : le.env.workload.train) {
    const float* q = le.env.workload.train_queries.Row(lq.row);
    for (const auto& t : lq.thresholds) {
      if (t.seg_cards[seg] <= 0) continue;
      const double est = local->Estimate(q, t.tau, le.xc.Row(lq.row));
      qerrs.push_back(QError(est, t.seg_cards[seg]));
    }
  }
  ASSERT_GT(qerrs.size(), 10u);
  std::sort(qerrs.begin(), qerrs.end());
  EXPECT_LT(qerrs[qerrs.size() / 2], 4.0);
}

TEST(LocalModelTest, EmptySegmentStillEstimatesNearZero) {
  LocalEnv le = MakeLocalEnv();
  Rng rng(3);
  // Segment index beyond any label -> zero training samples.
  auto local = LocalModel::Build(99, le.config, &rng).value();
  CardTrainOptions opts;
  opts.epochs = 5;
  const double loss =
      local->Train(le.env.workload.train_queries, le.xc,
                   le.env.workload.train, 0.0, opts)
          .value();
  EXPECT_EQ(loss, 0.0);  // nothing to train on
  const float* q = le.env.workload.test_queries.Row(0);
  std::vector<float> xc_row(le.config.aux_dim, 0.3f);
  // An untrained local model must answer 0, not network noise.
  EXPECT_EQ(local->Estimate(q, 0.1f, xc_row.data()), 0.0);
}

TEST(LocalModelTest, MaxCardClampRespected) {
  LocalEnv le = MakeLocalEnv();
  Rng rng(4);
  auto local = LocalModel::Build(0, le.config, &rng).value();
  local->set_max_card(7.0);
  local->model()->SetOutputBias(20.0f);  // would otherwise estimate e^20
  const float* q = le.env.workload.test_queries.Row(0);
  std::vector<float> xc_row(le.config.aux_dim, 0.3f);
  EXPECT_LE(local->Estimate(q, 0.5f, xc_row.data()), 7.0);
}

TEST(LocalModelTest, FineTuneImprovesAfterLabelShift) {
  LocalEnv le = MakeLocalEnv();
  Rng rng(5);
  const size_t seg = 1;
  auto local = LocalModel::Build(seg, le.config, &rng).value();
  CardTrainOptions opts;
  opts.epochs = 30;
  local->Train(le.env.workload.train_queries, le.xc, le.env.workload.train,
               0.2, opts);
  // Shift every label on this segment up 3x and fine-tune.
  auto shifted = le.env.workload.train;
  for (auto& lq : shifted) {
    for (auto& t : lq.thresholds) t.seg_cards[seg] *= 3.0f;
  }
  auto error_on = [&](const std::vector<LabeledQuery>& labeled) {
    double total = 0;
    size_t n = 0;
    for (const auto& lq : labeled) {
      const float* q = le.env.workload.train_queries.Row(lq.row);
      for (const auto& t : lq.thresholds) {
        if (t.seg_cards[seg] <= 0) continue;
        total += QError(local->Estimate(q, t.tau, le.xc.Row(lq.row)),
                        t.seg_cards[seg]);
        ++n;
      }
    }
    return total / std::max<size_t>(1, n);
  };
  const double before = error_on(shifted);
  local->FineTune(le.env.workload.train_queries, le.xc, shifted, 0.2, opts,
                  /*epochs=*/15);
  const double after = error_on(shifted);
  EXPECT_LT(after, before);
}

}  // namespace
}  // namespace simcard
