#include <gtest/gtest.h>

#include "eval/harness.h"
#include "index/ground_truth.h"
#include "support/request_helpers.h"

namespace simcard {
namespace {

using testsupport::EstimateCard;

struct InvertEnv {
  ExperimentEnv env;
  std::unique_ptr<Estimator> estimator;
};

const InvertEnv& Shared() {
  static const InvertEnv* shared = [] {
    auto* out = new InvertEnv;
    EnvOptions opts;
    opts.num_segments = 4;
    out->env = std::move(
        BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
    out->estimator =
        std::move(MakeEstimatorByName("QES", Scale::kTiny).value());
    TrainContext ctx = MakeTrainContext(out->env);
    EXPECT_TRUE(out->estimator->Train(ctx).ok());
    return out;
  }();
  return *shared;
}

TEST(InvertCardinalityTest, EstimateAtInvertedTauReachesTarget) {
  const auto& s = Shared();
  const float* q = s.env.workload.test_queries.Row(0);
  for (double target : {3.0, 10.0, 25.0}) {
    const float tau =
        InvertCardinality(s.estimator.get(), q, target, 0.0f, 1.0f);
    EXPECT_GE(EstimateCard(*s.estimator, q, tau), target * 0.999);
    // Just below tau the estimate must fall short (minimality), unless the
    // search bottomed out at lo.
    if (tau > 1e-4f) {
      EXPECT_LT(EstimateCard(*s.estimator, q, tau * 0.95f), target * 1.5);
    }
  }
}

TEST(InvertCardinalityTest, UnreachableTargetReturnsHi) {
  const auto& s = Shared();
  const float* q = s.env.workload.test_queries.Row(1);
  EXPECT_EQ(InvertCardinality(s.estimator.get(), q, 1e12, 0.0f, 0.8f), 0.8f);
}

TEST(InvertCardinalityTest, MonotoneInTarget) {
  const auto& s = Shared();
  const float* q = s.env.workload.test_queries.Row(2);
  float prev = -1.0f;
  for (double target = 2.0; target <= 64.0; target *= 2.0) {
    const float tau =
        InvertCardinality(s.estimator.get(), q, target, 0.0f, 1.0f);
    EXPECT_GE(tau, prev);
    prev = tau;
  }
}

TEST(InvertCardinalityTest, TrueCountNearTargetOnTrainedModel) {
  // End-to-end usefulness: the exact count at the inverted tau should be in
  // the target's ballpark (bounded by the estimator's own q-error).
  const auto& s = Shared();
  GroundTruth gt(&s.env.dataset);
  const float* q = s.env.workload.test_queries.Row(3);
  const double target = 20.0;
  const float tau =
      InvertCardinality(s.estimator.get(), q, target, 0.0f, 1.0f);
  const double truth = static_cast<double>(gt.Count(q, tau));
  EXPECT_GT(truth, 1.0);
  EXPECT_LT(truth, 400.0);  // within ~one order of magnitude both ways
}

}  // namespace
}  // namespace simcard
