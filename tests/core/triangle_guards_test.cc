// Triangle-inequality routing guards (see GlEstimatorConfig).
#include <gtest/gtest.h>

#include <algorithm>
#include "core/gl_estimator.h"
#include "eval/harness.h"

namespace simcard {
namespace {

GlEstimatorConfig FastConfig(bool guards) {
  GlEstimatorConfig config = GlEstimatorConfig::GlCnn();
  config.local_train.epochs = 10;
  config.global_train.epochs = 10;
  config.use_triangle_guards = guards;
  return config;
}

TEST(TriangleGuardsTest, ExclusionNeverDropsTrueMatches) {
  // The exclusion rule is provably sound: disabling guards can only ADD
  // segments relative to exclusion, so the guarded estimate must account
  // for at least the segments with true matches. Verify on real labels:
  // for every test sample, every segment with seg_card > 0 satisfies
  // xc[s] <= tau + radius[s] (the contrapositive of the exclusion rule).
  EnvOptions opts;
  opts.num_segments = 6;
  auto env =
      std::move(BuildEnvironment("youtube-sim", Scale::kTiny, opts).value());
  const auto& seg = env.segmentation;
  for (const auto& lq : env.workload.test) {
    const float* q = env.workload.test_queries.Row(lq.row);
    auto xc = seg.CentroidDistances(q, env.dataset.dim(),
                                    env.dataset.metric());
    for (const auto& t : lq.thresholds) {
      for (size_t s = 0; s < seg.num_segments(); ++s) {
        if (t.seg_cards[s] > 0.0f) {
          EXPECT_LE(xc[s], t.tau + seg.radius[s] + 1e-4f)
              << "exclusion rule would drop a segment with matches";
        }
      }
    }
  }
}

TEST(TriangleGuardsTest, GuardedEstimatorStillAccurate) {
  EnvOptions opts;
  opts.num_segments = 6;
  auto env =
      std::move(BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
  GlEstimator with(FastConfig(true));
  GlEstimator without(FastConfig(false));
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(with.Train(ctx).ok());
  ASSERT_TRUE(without.Train(ctx).ok());
  const double with_med = EvaluateSearch(&with, env.workload).qerror.median;
  const double without_med =
      EvaluateSearch(&without, env.workload).qerror.median;
  // Guards must not wreck accuracy (they mostly change tails).
  EXPECT_LT(with_med, 2.0 * without_med + 1.0);
}

TEST(TriangleGuardsTest, InclusionBackstopsForcedMiss) {
  // Force the global model to miss everything by cranking sigma to ~1;
  // with guards the centroid-within-tau rule still routes big thresholds.
  EnvOptions opts;
  opts.num_segments = 5;
  auto env =
      std::move(BuildEnvironment("youtube-sim", Scale::kTiny, opts).value());
  GlEstimatorConfig config = FastConfig(true);
  config.sigma = 0.999f;
  GlEstimator est(config);
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est.Train(ctx).ok());
  const float* q = env.workload.test_queries.Row(0);
  // A tau larger than the query's distance to some centroid triggers the
  // inclusion rule regardless of the (suppressed) global probabilities.
  auto xc = est.segmentation().CentroidDistances(q, env.dataset.dim(),
                                                 env.dataset.metric());
  const float big_tau = *std::max_element(xc.begin(), xc.end()) + 0.1f;
  auto per_seg = est.EstimatePerSegment(q, big_tau);
  EXPECT_EQ(per_seg.size(), est.segmentation().num_segments());
}

}  // namespace
}  // namespace simcard
