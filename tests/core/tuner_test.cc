#include "core/tuner.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/features.h"
#include "eval/harness.h"
#include "workload/labels.h"

namespace simcard {
namespace {

struct TunerEnv {
  Matrix queries;
  Matrix aux;
  std::vector<SampleRef> samples;
  CardModelConfig base;
};

TunerEnv MakeTunerEnv() {
  EnvOptions opts;
  opts.num_segments = 4;
  auto env =
      std::move(BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
  TunerEnv out;
  out.queries = env.workload.train_queries;
  out.aux = BuildCentroidDistanceFeatures(out.queries, env.segmentation,
                                          env.dataset.metric());
  out.samples = FlattenSearch(env.workload.train);
  out.base.query_dim = env.dataset.dim();
  out.base.use_cnn_query_tower = true;
  out.base.qes = QesConfig::Default(env.dataset.dim());
  out.base.aux_dim = env.segmentation.num_segments();
  out.base.tau_hidden = 8;
  out.base.tau_embed = 4;
  out.base.aux_hidden = 8;
  out.base.head_hidden = 16;
  return out;
}

TunerOptions FastTuner() {
  TunerOptions opts;
  opts.max_trials = 6;
  opts.trial_epochs = 4;
  opts.train_subsample = 150;
  opts.val_subsample = 50;
  return opts;
}

TEST(TunerTest, RejectsTooFewSamples) {
  TunerEnv env = MakeTunerEnv();
  std::vector<SampleRef> few(env.samples.begin(), env.samples.begin() + 5);
  EXPECT_FALSE(
      GreedyTuneQes(env.queries, &env.aux, few, env.base, FastTuner()).ok());
}

TEST(TunerTest, ReturnsFeasibleConfigWithinBudget) {
  TunerEnv env = MakeTunerEnv();
  auto result =
      GreedyTuneQes(env.queries, &env.aux, env.samples, env.base, FastTuner())
          .value();
  EXPECT_LE(result.trials, FastTuner().max_trials + 1);
  EXPECT_GT(result.trials, 0u);
  EXPECT_TRUE(std::isfinite(result.validation_error));
  // The returned config must build a working tower.
  Rng rng(1);
  CardModelConfig config = env.base;
  config.qes = result.config;
  EXPECT_TRUE(CardModel::Build(config, &rng).ok());
}

TEST(TunerTest, DeterministicForSeed) {
  TunerEnv env = MakeTunerEnv();
  TunerOptions opts = FastTuner();
  opts.seed = 7;
  auto a = GreedyTuneQes(env.queries, &env.aux, env.samples, env.base, opts)
               .value();
  auto b = GreedyTuneQes(env.queries, &env.aux, env.samples, env.base, opts)
               .value();
  EXPECT_EQ(a.config.ToString(), b.config.ToString());
  EXPECT_EQ(a.validation_error, b.validation_error);
}

TEST(TunerTest, RespectsMaxLayers) {
  TunerEnv env = MakeTunerEnv();
  TunerOptions opts = FastTuner();
  opts.max_layers = 1;
  opts.max_trials = 30;
  auto result =
      GreedyTuneQes(env.queries, &env.aux, env.samples, env.base, opts)
          .value();
  EXPECT_LE(result.config.merge_layers.size(), 1u);
}

TEST(TunerTest, ValidationNeverWorseThanBaseConfig) {
  // The search is seeded with the base config, so the returned validation
  // error can only be <= the base config's error on the same split.
  TunerEnv env = MakeTunerEnv();
  TunerOptions opts = FastTuner();
  opts.max_trials = 10;
  auto tuned =
      GreedyTuneQes(env.queries, &env.aux, env.samples, env.base, opts)
          .value();
  TunerOptions base_only = opts;
  base_only.max_trials = 1;  // budget for exactly the base evaluation
  base_only.cold_start_configs = 0;
  base_only.max_layers = 0;
  auto base = GreedyTuneQes(env.queries, &env.aux, env.samples, env.base,
                            base_only)
                  .value();
  EXPECT_LE(tuned.validation_error, base.validation_error + 1e-9);
}

}  // namespace
}  // namespace simcard
