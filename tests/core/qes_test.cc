#include "core/qes.h"

#include <gtest/gtest.h>

#include "nn/conv1d.h"

namespace simcard {
namespace {

TEST(QesConfigTest, DefaultAdaptsToDimension) {
  QesConfig big = QesConfig::Default(300);
  QesConfig small = QesConfig::Default(16);
  EXPECT_GT(big.num_segments, small.num_segments);
  EXPECT_FALSE(big.merge_layers.empty());
}

TEST(QesConfigTest, ToStringMentionsGeometry) {
  QesConfig config = QesConfig::Default(64);
  const std::string s = config.ToString();
  EXPECT_NE(s.find("segments="), std::string::npos);
  EXPECT_NE(s.find("embed="), std::string::npos);
}

TEST(BuildQesTowerTest, RejectsBadInputs) {
  Rng rng(1);
  size_t embed = 0;
  EXPECT_FALSE(BuildQesTower(0, QesConfig::Default(64), &rng, &embed).ok());
  QesConfig zero = QesConfig::Default(64);
  zero.embed_dim = 0;
  EXPECT_FALSE(BuildQesTower(64, zero, &rng, &embed).ok());
}

TEST(BuildQesTowerTest, OutputWidthIsEmbedDim) {
  Rng rng(2);
  QesConfig config = QesConfig::Default(64);
  config.embed_dim = 24;
  size_t embed = 0;
  auto tower = BuildQesTower(64, config, &rng, &embed).value();
  EXPECT_EQ(embed, 24u);
  EXPECT_EQ(tower->OutputCols(64), 24u);
  Matrix x = Matrix::Gaussian(3, 64, 1.0f, &rng);
  EXPECT_EQ(tower->Forward(x).cols(), 24u);
}

TEST(BuildQesTowerTest, NonDivisibleDimensionIsPadded) {
  // 30 dims into 8 segments needs padding; the tower must still build.
  Rng rng(3);
  QesConfig config = QesConfig::Default(30);
  config.num_segments = 8;
  size_t embed = 0;
  auto tower = BuildQesTower(30, config, &rng, &embed).value();
  Matrix x = Matrix::Gaussian(2, 30, 1.0f, &rng);
  EXPECT_EQ(tower->Forward(x).cols(), config.embed_dim);
}

TEST(BuildQesTowerTest, SegmentsClampedToDim) {
  Rng rng(4);
  QesConfig config = QesConfig::Default(4);
  config.num_segments = 64;  // more segments than dimensions
  size_t embed = 0;
  auto tower_or = BuildQesTower(4, config, &rng, &embed);
  ASSERT_TRUE(tower_or.ok());
  Matrix x = Matrix::Gaussian(1, 4, 1.0f, &rng);
  tower_or.value()->Forward(x);
}

TEST(BuildQesTowerTest, InfeasibleMergeLayersSkipped) {
  Rng rng(5);
  QesConfig config;
  config.num_segments = 4;
  config.seg_channels = 4;
  ConvLayerSpec monster;
  monster.kernel = 100;  // cannot fit on a 4-long signal
  config.merge_layers = {monster};
  config.embed_dim = 8;
  size_t embed = 0;
  auto tower = BuildQesTower(32, config, &rng, &embed).value();
  Matrix x = Matrix::Gaussian(1, 32, 1.0f, &rng);
  EXPECT_EQ(tower->Forward(x).cols(), 8u);
}

TEST(BuildQesTowerTest, FirstLayerIsSegmentConv) {
  Rng rng(6);
  QesConfig config = QesConfig::Default(64);
  config.num_segments = 8;
  size_t embed = 0;
  auto tower = BuildQesTower(64, config, &rng, &embed).value();
  auto* conv = dynamic_cast<nn::Conv1D*>(tower->layer(0));
  ASSERT_NE(conv, nullptr);
  // kernel == stride == segment width 8 -> out length = #segments.
  EXPECT_EQ(conv->out_length(), 8u);
  EXPECT_EQ(conv->out_channels(), config.seg_channels);
}

TEST(BuildQesTowerTest, PoolingLayersApplied) {
  Rng rng(7);
  QesConfig config;
  config.num_segments = 8;
  config.seg_channels = 4;
  ConvLayerSpec merge;
  merge.channels = 4;
  merge.kernel = 2;
  merge.stride = 1;
  merge.pool_kernel = 2;
  merge.pool_op = nn::PoolOp::kMax;
  config.merge_layers = {merge};
  config.embed_dim = 8;
  size_t embed = 0;
  auto tower = BuildQesTower(64, config, &rng, &embed).value();
  bool has_pool = false;
  for (size_t i = 0; i < tower->NumLayers(); ++i) {
    if (tower->layer(i)->Name() == "Pool1D") has_pool = true;
  }
  EXPECT_TRUE(has_pool);
}

}  // namespace
}  // namespace simcard
