#include "index/ground_truth.h"

#include <gtest/gtest.h>
#include <cmath>

#include "data/generators.h"

namespace simcard {
namespace {

TEST(GroundTruthTest, CountMatchesBruteForce) {
  auto d = MakeAnalogDataset("glove-sim", Scale::kTiny, 1).value();
  GroundTruth gt(&d);
  const float* q = d.Point(5);
  for (float tau : {0.05f, 0.2f, 0.5f}) {
    size_t expected = 0;
    for (size_t i = 0; i < d.size(); ++i) {
      expected += d.DistanceTo(q, i) <= tau;
    }
    EXPECT_EQ(gt.Count(q, tau), expected) << "tau=" << tau;
  }
}

TEST(GroundTruthTest, HammingBitPathMatchesFloatPath) {
  auto d = MakeAnalogDataset("imagenet-sim", Scale::kTiny, 2).value();
  GroundTruth gt(&d);
  const float* q = d.Point(3);
  std::vector<float> fast;
  gt.ComputeAllDistances(q, &fast);
  for (size_t i = 0; i < d.size(); i += 37) {
    EXPECT_FLOAT_EQ(fast[i],
                    Distance(q, d.Point(i), d.dim(), Metric::kHamming));
  }
}

TEST(GroundTruthTest, ProfileCountsMatchDirectCounts) {
  auto d = MakeAnalogDataset("youtube-sim", Scale::kTiny, 3).value();
  GroundTruth gt(&d);
  const float* q = d.Point(0);
  auto profile = gt.BuildProfile(q, nullptr);
  EXPECT_EQ(profile.sorted_all.size(), d.size());
  for (float tau : {0.1f, 0.5f, 1.0f, 3.0f}) {
    EXPECT_EQ(profile.CountAt(tau), gt.Count(q, tau));
  }
  // Sorted ascending.
  for (size_t i = 1; i < profile.sorted_all.size(); ++i) {
    EXPECT_LE(profile.sorted_all[i - 1], profile.sorted_all[i]);
  }
}

TEST(GroundTruthTest, SegmentCountsSumToTotal) {
  auto d = MakeAnalogDataset("glove-sim", Scale::kTiny, 4).value();
  SegmentationOptions seg_opts;
  seg_opts.target_segments = 6;
  auto seg = SegmentData(d, seg_opts).value();
  GroundTruth gt(&d);
  const float* q = d.Point(7);
  auto profile = gt.BuildProfile(q, &seg);
  ASSERT_EQ(profile.sorted_by_seg.size(), seg.num_segments());
  for (float tau : {0.05f, 0.15f, 0.4f}) {
    size_t sum = 0;
    for (size_t s = 0; s < seg.num_segments(); ++s) {
      sum += profile.SegCountAt(s, tau);
    }
    EXPECT_EQ(sum, profile.CountAt(tau)) << "tau=" << tau;
  }
}

TEST(GroundTruthTest, TauForSelectivityInvertsCount) {
  auto d = MakeAnalogDataset("glove-sim", Scale::kTiny, 5).value();
  GroundTruth gt(&d);
  auto profile = gt.BuildProfile(d.Point(11), nullptr);
  for (double sel : {0.001, 0.01, 0.1}) {
    const float tau = profile.TauForSelectivity(sel);
    const size_t target =
        static_cast<size_t>(std::ceil(sel * static_cast<double>(d.size())));
    // Count at tau reaches the target rank (ties can push it higher).
    EXPECT_GE(profile.CountAt(tau), target);
  }
}

TEST(GroundTruthTest, TauForSelectivityMonotone) {
  auto d = MakeAnalogDataset("imagenet-sim", Scale::kTiny, 6).value();
  GroundTruth gt(&d);
  auto profile = gt.BuildProfile(d.Point(2), nullptr);
  float prev = -1.0f;
  for (double sel = 0.001; sel <= 0.5; sel *= 2) {
    const float tau = profile.TauForSelectivity(sel);
    EXPECT_GE(tau, prev);
    prev = tau;
  }
}

TEST(GroundTruthTest, QueryFromDatasetCountsItself) {
  auto d = MakeAnalogDataset("youtube-sim", Scale::kTiny, 7).value();
  GroundTruth gt(&d);
  // Distance to itself is 0, so card at tau=0 is at least 1.
  EXPECT_GE(gt.Count(d.Point(9), 0.0f), 1u);
}

}  // namespace
}  // namespace simcard
