#include "index/pivot_index.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "index/ground_truth.h"

namespace simcard {
namespace {

TEST(PivotIndexTest, RejectsBadInputs) {
  ExactPivotIndex::Options opts;
  EXPECT_FALSE(ExactPivotIndex::Build(nullptr, opts).ok());
  Dataset empty;
  EXPECT_FALSE(ExactPivotIndex::Build(&empty, opts).ok());
}

// Exactness across metrics: the pivot index must agree with brute force.
class PivotIndexExactnessTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(PivotIndexExactnessTest, CountsAreExact) {
  auto d = MakeAnalogDataset(GetParam(), Scale::kTiny, 8).value();
  ExactPivotIndex::Options opts;
  opts.num_pivots = 6;
  auto index = ExactPivotIndex::Build(&d, opts).value();
  GroundTruth gt(&d);
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const float* q = d.Point(rng.NextBounded(d.size()));
    auto profile = gt.BuildProfile(q, nullptr);
    for (double sel : {0.002, 0.01, 0.05}) {
      const float tau = profile.TauForSelectivity(sel);
      EXPECT_EQ(index.Count(q, tau), gt.Count(q, tau))
          << GetParam() << " tau=" << tau;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, PivotIndexExactnessTest,
                         ::testing::Values("glove-sim", "imagenet-sim",
                                           "youtube-sim"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string name = i.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(PivotIndexTest, PruningActuallyHappens) {
  auto d = MakeAnalogDataset("glove-sim", Scale::kTiny, 9).value();
  ExactPivotIndex::Options opts;
  opts.num_pivots = 8;
  auto index = ExactPivotIndex::Build(&d, opts).value();
  GroundTruth gt(&d);
  auto profile = gt.BuildProfile(d.Point(0), nullptr);
  // Low-selectivity query: the triangle bound should prune most points.
  index.Count(d.Point(0), profile.TauForSelectivity(0.005));
  EXPECT_GT(index.last_prune_fraction(), 0.3);
}

TEST(PivotIndexTest, MorePivotsPruneMore) {
  auto d = MakeAnalogDataset("youtube-sim", Scale::kTiny, 10).value();
  GroundTruth gt(&d);
  auto profile = gt.BuildProfile(d.Point(1), nullptr);
  const float tau = profile.TauForSelectivity(0.005);

  ExactPivotIndex::Options few;
  few.num_pivots = 1;
  auto index_few = ExactPivotIndex::Build(&d, few).value();
  index_few.Count(d.Point(1), tau);

  ExactPivotIndex::Options many;
  many.num_pivots = 16;
  auto index_many = ExactPivotIndex::Build(&d, many).value();
  index_many.Count(d.Point(1), tau);

  EXPECT_GE(index_many.last_prune_fraction(),
            index_few.last_prune_fraction());
}

}  // namespace
}  // namespace simcard
