// Pivot-index exactness on the sparse Hamming analogs (the dense/angular
// analogs are covered in pivot_index_test.cc). Sparse binary data has very
// concentrated distances, the hardest case for triangle-inequality pruning
// — exactness must hold even when pruning is useless.
#include <gtest/gtest.h>

#include "data/generators.h"
#include "index/ground_truth.h"
#include "index/pivot_index.h"

namespace simcard {
namespace {

class SparsePivotTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SparsePivotTest, ExactOnSparseHamming) {
  auto d = MakeAnalogDataset(GetParam(), Scale::kTiny, 21).value();
  ASSERT_EQ(d.metric(), Metric::kHamming);
  ExactPivotIndex::Options opts;
  opts.num_pivots = 4;
  auto index = ExactPivotIndex::Build(&d, opts).value();
  GroundTruth gt(&d);
  Rng rng(22);
  for (int trial = 0; trial < 8; ++trial) {
    const float* q = d.Point(rng.NextBounded(d.size()));
    auto profile = gt.BuildProfile(q, nullptr);
    for (double sel : {0.001, 0.01, 0.2}) {
      const float tau = profile.TauForSelectivity(sel);
      EXPECT_EQ(index.Count(q, tau), gt.Count(q, tau))
          << GetParam() << " tau=" << tau;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SparseAnalogs, SparsePivotTest,
                         ::testing::Values("bms-sim", "aminer-sim",
                                           "dblp-sim"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string name = i.param;
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace simcard
