// Shared test plumbing for the unified estimation API: builds an
// EstimateRequest the way production callers do, so tests stop going
// through the deprecated EstimateSearch/Submit shims (enforced by
// scripts/check_api_deprecations.sh, which gates tests/ too; the shims
// themselves stay covered by tests/core/deprecated_shim_test.cc).
#ifndef SIMCARD_TESTS_SUPPORT_REQUEST_HELPERS_H_
#define SIMCARD_TESTS_SUPPORT_REQUEST_HELPERS_H_

#include <span>

#include "core/estimator.h"
#include "core/gl_estimator.h"

namespace simcard {
namespace testsupport {

// Single-query estimate card(q, tau, D) through Estimate(EstimateRequest).
// The span is passed in the legacy length-unknown encoding (empty span,
// non-null data) because most tests hold a bare row pointer; the estimator
// trusts it for dim() floats, exactly like the shim the tests migrated off.
inline double EstimateCard(Estimator& est, const float* query, float tau,
                           SegmentEvalPolicy* policy = nullptr) {
  EstimateRequest request;
  request.query = std::span<const float>(query, static_cast<size_t>(0));
  request.tau = tau;
  request.options.policy = policy;
  return est.Estimate(request);
}

// Const-path twin for shared (published) GL models.
inline double EstimateCard(const GlEstimator& est, const float* query,
                           float tau, SegmentEvalPolicy* policy = nullptr) {
  EstimateRequest request;
  request.query = std::span<const float>(query, static_cast<size_t>(0));
  request.tau = tau;
  request.options.policy = policy;
  return est.Estimate(request);
}

}  // namespace testsupport
}  // namespace simcard

#endif  // SIMCARD_TESTS_SUPPORT_REQUEST_HELPERS_H_
