// Cross-dataset integration sweep: the full pipeline (generate -> segment ->
// label -> train -> estimate) must work on every paper-analog dataset, i.e.
// across all three metric families (Hamming sparse/dense, angular, L2) and
// all dimensionalities.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/harness.h"

namespace simcard {
namespace {

class CrossDatasetTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CrossDatasetTest, GlCnnPipelineEndToEnd) {
  const std::string dataset = GetParam();
  EnvOptions opts;
  opts.num_segments = 5;
  auto env_or = BuildEnvironment(dataset, Scale::kTiny, opts);
  ASSERT_TRUE(env_or.ok()) << env_or.status().ToString();
  ExperimentEnv env = std::move(env_or).value();

  // Environment sanity across metrics.
  EXPECT_EQ(env.dataset.size(), env.spec.num_points);
  EXPECT_EQ(env.workload.train.size(), env.spec.train_queries);
  for (const auto& lq : env.workload.test) {
    float prev_card = -1.0f;
    for (const auto& t : lq.thresholds) {
      EXPECT_GE(t.card, prev_card);  // labels monotone in tau
      prev_card = t.card;
      float seg_sum = 0.0f;
      for (float c : t.seg_cards) seg_sum += c;
      EXPECT_FLOAT_EQ(seg_sum, t.card);
    }
  }

  auto est = std::move(MakeEstimatorByName("GL-CNN", Scale::kTiny).value());
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est->Train(ctx).ok());
  EvalResult result = EvaluateSearch(est.get(), env.workload);
  EXPECT_TRUE(std::isfinite(result.qerror.mean)) << dataset;
  // Loose accuracy bar: far better than the 1%-sampling failure mode and
  // sane for a tiny training budget.
  EXPECT_LT(result.qerror.median, 10.0) << dataset;
  EXPECT_GT(result.qerror.median, 0.99) << dataset;
}

INSTANTIATE_TEST_SUITE_P(
    AllAnalogs, CrossDatasetTest, ::testing::ValuesIn(AnalogNames()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace simcard
