// End-to-end integration: every estimator trains on a tiny environment and
// beats (or at least does not catastrophically trail) the accuracy bar the
// paper's story requires; learned methods must beat small-sample baselines.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "eval/harness.h"
#include "support/request_helpers.h"

namespace simcard {
namespace {

// One shared environment + per-estimator results, computed once.
struct SharedResults {
  ExperimentEnv env;
  std::map<std::string, EvalResult> results;
};

const SharedResults& GetSharedResults() {
  static const SharedResults* shared = [] {
    auto* out = new SharedResults;
    EnvOptions opts;
    opts.num_segments = 6;
    out->env = std::move(
        BuildEnvironment("glove-sim", Scale::kTiny, opts).value());
    for (const char* name :
         {"Sampling (1%)", "Sampling (10%)", "Kernel-based", "MLP", "QES",
          "CardNet", "GL-MLP", "GL-CNN"}) {
      auto est = std::move(MakeEstimatorByName(name, Scale::kTiny).value());
      TrainContext ctx = MakeTrainContext(out->env);
      Status st = est->Train(ctx);
      EXPECT_TRUE(st.ok()) << name << ": " << st.ToString();
      out->results[name] = EvaluateSearch(est.get(), out->env.workload);
    }
    return out;
  }();
  return *shared;
}

TEST(EndToEndTest, AllEstimatorsProduceFiniteErrors) {
  for (const auto& [name, result] : GetSharedResults().results) {
    EXPECT_TRUE(std::isfinite(result.qerror.mean)) << name;
    EXPECT_GE(result.qerror.median, 1.0) << name;
  }
}

TEST(EndToEndTest, LearnedMethodsBeatSmallSampleBaseline) {
  // The paper's headline: learned estimators dominate 1% sampling.
  const auto& results = GetSharedResults().results;
  const double sampling = results.at("Sampling (1%)").qerror.mean;
  for (const char* name : {"MLP", "QES", "GL-MLP", "GL-CNN", "CardNet"}) {
    EXPECT_LT(results.at(name).qerror.mean, sampling) << name;
  }
}

TEST(EndToEndTest, LearnedMethodsHaveReasonableMedians) {
  const auto& results = GetSharedResults().results;
  for (const char* name : {"MLP", "QES", "GL-MLP", "GL-CNN"}) {
    EXPECT_LT(results.at(name).qerror.median, 8.0) << name;
  }
}

TEST(EndToEndTest, LearnedModelsAreSmallerThanTheDataset) {
  // Table 5's story: learned models cost a fraction of retained data. At
  // tiny scale a 10% sample is only a few KB, so the meaningful bound here
  // is the dataset itself; bench_table5 reports the full comparison at
  // realistic scale.
  const auto& env = GetSharedResults().env;
  auto qes = std::move(MakeEstimatorByName("QES", Scale::kTiny).value());
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(qes->Train(ctx).ok());
  const size_t dataset_bytes =
      env.dataset.size() * env.dataset.dim() * sizeof(float);
  EXPECT_LT(qes->ModelSizeBytes(), dataset_bytes);
}

TEST(EndToEndTest, LearnedInferenceFasterThanTenPercentSampling) {
  // Table 6's story: per-query inference of learned models beats scanning a
  // 10% sample. This needs a realistically-sized sample — at tiny scale a
  // 10% sample is only 200 vectors and scans faster than a forward pass —
  // so this test alone runs at small scale (20k points).
  EnvOptions opts;
  opts.num_segments = 8;
  auto env = std::move(
      BuildEnvironment("glove-sim", Scale::kSmall, opts).value());
  TrainContext ctx = MakeTrainContext(env);
  auto qes = std::move(MakeEstimatorByName("QES", Scale::kTiny).value());
  ASSERT_TRUE(qes->Train(ctx).ok());
  auto sampling = std::move(
      MakeEstimatorByName("Sampling (10%)", Scale::kTiny).value());
  ASSERT_TRUE(sampling->Train(ctx).ok());
  const double qes_ms = EvaluateSearch(qes.get(), env.workload).mean_latency_ms;
  const double sampling_ms =
      EvaluateSearch(sampling.get(), env.workload).mean_latency_ms;
  EXPECT_LT(qes_ms, sampling_ms);
}

TEST(EndToEndTest, DefaultJoinEstimateIsSumOfSearches) {
  const auto& env = GetSharedResults().env;
  auto est = std::move(
      MakeEstimatorByName("Sampling (10%)", Scale::kTiny).value());
  TrainContext ctx = MakeTrainContext(env);
  ASSERT_TRUE(est->Train(ctx).ok());
  std::vector<uint32_t> rows = {0, 1, 2};
  const float tau = 0.2f;
  double expected = 0.0;
  for (uint32_t row : rows) {
    expected += testsupport::EstimateCard(
        *est, env.workload.test_queries.Row(row), tau);
  }
  EXPECT_NEAR(
      est->EstimateJoin(env.workload.test_queries, rows, tau), expected,
      1e-9);
}

}  // namespace
}  // namespace simcard
