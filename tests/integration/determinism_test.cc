// Determinism property: identical seeds must produce bit-identical
// environments and estimator behavior — the foundation for reproducible
// experiments on this repo's synthetic substrate.
#include <gtest/gtest.h>

#include "eval/harness.h"
#include "support/request_helpers.h"

namespace simcard {
namespace {

class DeterminismTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DeterminismTest, TrainTwiceEstimateIdentically) {
  const char* method = GetParam();
  EnvOptions opts;
  opts.num_segments = 4;
  opts.seed = 31415;
  auto env_a =
      std::move(BuildEnvironment("imagenet-sim", Scale::kTiny, opts).value());
  auto env_b =
      std::move(BuildEnvironment("imagenet-sim", Scale::kTiny, opts).value());
  ASSERT_TRUE(env_a.dataset.points().AllClose(env_b.dataset.points(), 0.0f));

  auto est_a = std::move(MakeEstimatorByName(method, Scale::kTiny).value());
  auto est_b = std::move(MakeEstimatorByName(method, Scale::kTiny).value());
  TrainContext ctx_a = MakeTrainContext(env_a);
  TrainContext ctx_b = MakeTrainContext(env_b);
  ASSERT_TRUE(est_a->Train(ctx_a).ok());
  ASSERT_TRUE(est_b->Train(ctx_b).ok());

  for (size_t i = 0; i < 5; ++i) {
    const auto& lq = env_a.workload.test[i];
    const float* q = env_a.workload.test_queries.Row(lq.row);
    for (const auto& t : lq.thresholds) {
      EXPECT_DOUBLE_EQ(testsupport::EstimateCard(*est_a, q, t.tau),
                       testsupport::EstimateCard(*est_b, q, t.tau))
          << method;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, DeterminismTest,
                         ::testing::Values("MLP", "QES", "CardNet", "GL-CNN",
                                           "Kernel-based"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string name = i.param;
                           for (auto& c : name) {
                             if (!std::isalnum(
                                     static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace simcard
