#include "workload/join_sets.h"

#include <gtest/gtest.h>

#include "data/generators.h"

namespace simcard {
namespace {

struct Env {
  Dataset dataset;
  Segmentation segmentation;
  SearchWorkload workload;
};

Env MakeEnv() {
  Env env;
  env.dataset = MakeAnalogDataset("glove-sim", Scale::kTiny, 3).value();
  SegmentationOptions seg_opts;
  seg_opts.target_segments = 5;
  env.segmentation = SegmentData(env.dataset, seg_opts).value();
  WorkloadOptions wl_opts;
  wl_opts.num_train = 60;
  wl_opts.num_test = 20;
  wl_opts.keep_profiles = true;
  env.workload =
      BuildSearchWorkload(env.dataset, &env.segmentation, wl_opts).value();
  return env;
}

JoinWorkloadOptions SmallJoinOptions() {
  JoinWorkloadOptions opts;
  opts.num_train_sets = 6;
  opts.num_test_sets = 3;
  opts.thresholds_per_set = 4;
  return opts;
}

TEST(JoinSetsTest, RequiresProfiles) {
  Env env = MakeEnv();
  SearchWorkload no_profiles = env.workload;
  no_profiles.train_profiles.clear();
  EXPECT_FALSE(BuildJoinWorkload(no_profiles,
                                 env.segmentation.num_segments(),
                                 SmallJoinOptions())
                   .ok());
}

TEST(JoinSetsTest, ShapesMatchOptions) {
  Env env = MakeEnv();
  auto jw = BuildJoinWorkload(env.workload, env.segmentation.num_segments(),
                              SmallJoinOptions())
                .value();
  EXPECT_EQ(jw.train.size(), 6u * 4u);
  ASSERT_EQ(jw.test_buckets.size(), 3u);
  for (const auto& bucket : jw.test_buckets) {
    EXPECT_EQ(bucket.size(), 3u * 4u);
  }
}

TEST(JoinSetsTest, TrainSizesInPaperRange) {
  Env env = MakeEnv();
  auto jw = BuildJoinWorkload(env.workload, env.segmentation.num_segments(),
                              SmallJoinOptions())
                .value();
  for (const auto& js : jw.train) {
    EXPECT_GE(js.query_rows.size(), 1u);
    EXPECT_LT(js.query_rows.size(), 100u);
    EXPECT_FALSE(js.from_test_queries);
  }
}

TEST(JoinSetsTest, TestBucketSizesMatchPaperRanges) {
  Env env = MakeEnv();
  auto jw = BuildJoinWorkload(env.workload, env.segmentation.num_segments(),
                              SmallJoinOptions())
                .value();
  const size_t lo[3] = {50, 100, 150};
  const size_t hi[3] = {100, 150, 200};
  for (size_t b = 0; b < 3; ++b) {
    for (const auto& js : jw.test_buckets[b]) {
      EXPECT_GE(js.query_rows.size(), lo[b]);
      EXPECT_LT(js.query_rows.size(), hi[b]);
      EXPECT_TRUE(js.from_test_queries);
    }
  }
}

TEST(JoinSetsTest, CardIsSumOfMemberCards) {
  Env env = MakeEnv();
  auto jw = BuildJoinWorkload(env.workload, env.segmentation.num_segments(),
                              SmallJoinOptions())
                .value();
  for (const auto& js : jw.train) {
    double expected = 0.0;
    for (uint32_t row : js.query_rows) {
      expected += static_cast<double>(
          env.workload.train_profiles[row].CountAt(js.tau));
    }
    EXPECT_DOUBLE_EQ(js.card, expected);
  }
}

TEST(JoinSetsTest, SegCardsSumToTotal) {
  Env env = MakeEnv();
  auto jw = BuildJoinWorkload(env.workload, env.segmentation.num_segments(),
                              SmallJoinOptions())
                .value();
  for (const auto& js : jw.train) {
    double sum = 0.0;
    for (double c : js.seg_cards) sum += c;
    EXPECT_NEAR(sum, js.card, 1e-6);
  }
}

TEST(JoinSetsTest, TrainThresholdsEvenlySpaced) {
  Env env = MakeEnv();
  JoinWorkloadOptions opts = SmallJoinOptions();
  opts.num_train_sets = 1;
  opts.thresholds_per_set = 5;
  auto jw = BuildJoinWorkload(env.workload, env.segmentation.num_segments(),
                              opts)
                .value();
  ASSERT_EQ(jw.train.size(), 5u);
  const float step = jw.train[1].tau - jw.train[0].tau;
  EXPECT_GT(step, 0.0f);
  for (size_t i = 2; i < 5; ++i) {
    EXPECT_NEAR(jw.train[i].tau - jw.train[i - 1].tau, step, 1e-5f);
  }
}

TEST(JoinSetsTest, DeterministicForSeed) {
  Env env = MakeEnv();
  auto a = BuildJoinWorkload(env.workload, env.segmentation.num_segments(),
                             SmallJoinOptions())
               .value();
  auto b = BuildJoinWorkload(env.workload, env.segmentation.num_segments(),
                             SmallJoinOptions())
               .value();
  ASSERT_EQ(a.train.size(), b.train.size());
  for (size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].query_rows, b.train[i].query_rows);
    EXPECT_EQ(a.train[i].tau, b.train[i].tau);
    EXPECT_EQ(a.train[i].card, b.train[i].card);
  }
}

}  // namespace
}  // namespace simcard
