#include "workload/labels.h"

#include <gtest/gtest.h>

namespace simcard {
namespace {

std::vector<LabeledQuery> MakeLabeled() {
  // Two queries, two thresholds each, three segments.
  std::vector<LabeledQuery> out(2);
  out[0].row = 0;
  out[0].thresholds = {
      {0.1f, 5.0f, {5.0f, 0.0f, 0.0f}},
      {0.2f, 12.0f, {8.0f, 4.0f, 0.0f}},
  };
  out[1].row = 1;
  out[1].thresholds = {
      {0.05f, 0.0f, {0.0f, 0.0f, 0.0f}},
      {0.3f, 9.0f, {0.0f, 3.0f, 6.0f}},
  };
  return out;
}

TEST(LabelsTest, FlattenSearchKeepsAllSamples) {
  auto flat = FlattenSearch(MakeLabeled());
  ASSERT_EQ(flat.size(), 4u);
  EXPECT_EQ(flat[0].query_row, 0u);
  EXPECT_FLOAT_EQ(flat[0].tau, 0.1f);
  EXPECT_FLOAT_EQ(flat[0].card, 5.0f);
  EXPECT_EQ(flat[3].query_row, 1u);
  EXPECT_FLOAT_EQ(flat[3].card, 9.0f);
}

TEST(LabelsTest, FlattenSegmentTargetsSegmentCards) {
  auto flat = FlattenSegment(MakeLabeled(), /*segment=*/1,
                             /*zero_keep_prob=*/1.0, nullptr);
  ASSERT_EQ(flat.size(), 4u);
  EXPECT_FLOAT_EQ(flat[0].card, 0.0f);
  EXPECT_FLOAT_EQ(flat[1].card, 4.0f);
  EXPECT_FLOAT_EQ(flat[3].card, 3.0f);
}

TEST(LabelsTest, FlattenSegmentDropsZerosWithProbabilityZero) {
  Rng rng(1);
  auto flat = FlattenSegment(MakeLabeled(), /*segment=*/2,
                             /*zero_keep_prob=*/0.0, &rng);
  ASSERT_EQ(flat.size(), 1u);  // only the 6.0 sample survives
  EXPECT_FLOAT_EQ(flat[0].card, 6.0f);
}

TEST(LabelsTest, FlattenSegmentOutOfRangeSegmentIsAllZeros) {
  Rng rng(2);
  auto flat = FlattenSegment(MakeLabeled(), /*segment=*/99,
                             /*zero_keep_prob=*/0.0, &rng);
  EXPECT_TRUE(flat.empty());
}

TEST(LabelsTest, GlobalLabelsShapeAndContent) {
  auto labels = BuildGlobalLabels(MakeLabeled(), 3);
  ASSERT_EQ(labels.samples.size(), 4u);
  ASSERT_EQ(labels.labels.rows(), 4u);
  ASSERT_EQ(labels.labels.cols(), 3u);
  // Sample 0: seg cards {5,0,0} -> labels {1,0,0}.
  EXPECT_EQ(labels.labels.at(0, 0), 1.0f);
  EXPECT_EQ(labels.labels.at(0, 1), 0.0f);
  // Sample 3: seg cards {0,3,6} -> labels {0,1,1}.
  EXPECT_EQ(labels.labels.at(3, 0), 0.0f);
  EXPECT_EQ(labels.labels.at(3, 1), 1.0f);
  EXPECT_EQ(labels.labels.at(3, 2), 1.0f);
}

TEST(LabelsTest, GlobalPenaltyIsMinMaxNormalized) {
  auto labels = BuildGlobalLabels(MakeLabeled(), 3);
  // Sample 1: seg cards {8,4,0} -> eps {1, 0.5, 0}.
  EXPECT_FLOAT_EQ(labels.penalty.at(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(labels.penalty.at(1, 1), 0.5f);
  EXPECT_FLOAT_EQ(labels.penalty.at(1, 2), 0.0f);
  // Sample 2: all-zero seg cards -> eps all zero (constant row).
  for (size_t s = 0; s < 3; ++s) {
    EXPECT_FLOAT_EQ(labels.penalty.at(2, s), 0.0f);
  }
}

}  // namespace
}  // namespace simcard
