#include "workload/queries.h"

#include <gtest/gtest.h>

#include "data/generators.h"
#include "index/ground_truth.h"

namespace simcard {
namespace {

struct Env {
  Dataset dataset;
  Segmentation segmentation;
};

Env MakeEnv(uint64_t seed = 1) {
  Env env;
  env.dataset = MakeAnalogDataset("glove-sim", Scale::kTiny, seed).value();
  SegmentationOptions opts;
  opts.target_segments = 6;
  env.segmentation = SegmentData(env.dataset, opts).value();
  return env;
}

WorkloadOptions SmallOptions() {
  WorkloadOptions opts;
  opts.num_train = 40;
  opts.num_test = 10;
  opts.thresholds_per_query = 10;
  return opts;
}

TEST(WorkloadTest, RejectsBadInputs) {
  Env env = MakeEnv();
  WorkloadOptions opts = SmallOptions();
  opts.num_train = env.dataset.size();
  opts.num_test = 1;
  EXPECT_FALSE(BuildSearchWorkload(env.dataset, nullptr, opts).ok());
  opts = SmallOptions();
  opts.thresholds_per_query = 0;
  EXPECT_FALSE(BuildSearchWorkload(env.dataset, nullptr, opts).ok());
}

TEST(WorkloadTest, ShapesMatchOptions) {
  Env env = MakeEnv();
  auto wl = BuildSearchWorkload(env.dataset, &env.segmentation,
                                SmallOptions()).value();
  EXPECT_EQ(wl.train_queries.rows(), 40u);
  EXPECT_EQ(wl.test_queries.rows(), 10u);
  EXPECT_EQ(wl.train.size(), 40u);
  EXPECT_EQ(wl.test.size(), 10u);
  for (const auto& lq : wl.train) {
    EXPECT_EQ(lq.thresholds.size(), 10u);
    for (const auto& t : lq.thresholds) {
      EXPECT_EQ(t.seg_cards.size(), env.segmentation.num_segments());
    }
  }
  EXPECT_GT(wl.label_build_seconds, 0.0);
}

TEST(WorkloadTest, CardsAreExact) {
  Env env = MakeEnv();
  auto wl = BuildSearchWorkload(env.dataset, &env.segmentation,
                                SmallOptions()).value();
  GroundTruth gt(&env.dataset);
  for (size_t i = 0; i < 5; ++i) {
    const auto& lq = wl.train[i];
    const float* q = wl.train_queries.Row(lq.row);
    for (const auto& t : lq.thresholds) {
      EXPECT_EQ(static_cast<size_t>(t.card), gt.Count(q, t.tau));
    }
  }
}

TEST(WorkloadTest, SegCardsSumToTotal) {
  Env env = MakeEnv();
  auto wl = BuildSearchWorkload(env.dataset, &env.segmentation,
                                SmallOptions()).value();
  for (const auto& lq : wl.test) {
    for (const auto& t : lq.thresholds) {
      float sum = 0.0f;
      for (float c : t.seg_cards) sum += c;
      EXPECT_FLOAT_EQ(sum, t.card);
    }
  }
}

TEST(WorkloadTest, SelectivityRespectsMax) {
  Env env = MakeEnv();
  WorkloadOptions opts = SmallOptions();
  opts.max_selectivity = 0.01;
  auto wl = BuildSearchWorkload(env.dataset, &env.segmentation, opts).value();
  const double limit = 0.011 * env.dataset.size();  // small tie slack
  for (const auto& lq : wl.train) {
    for (const auto& t : lq.thresholds) {
      EXPECT_LE(t.card, limit * 2)  // ties at the rank can exceed slightly
          << "train selectivity far above the configured max";
    }
  }
}

TEST(WorkloadTest, ThresholdsAscendPerQuery) {
  Env env = MakeEnv();
  auto wl = BuildSearchWorkload(env.dataset, &env.segmentation,
                                SmallOptions()).value();
  for (const auto& lq : wl.train) {
    for (size_t i = 1; i < lq.thresholds.size(); ++i) {
      EXPECT_LE(lq.thresholds[i - 1].tau, lq.thresholds[i].tau);
      EXPECT_LE(lq.thresholds[i - 1].card, lq.thresholds[i].card);
    }
  }
}

TEST(WorkloadTest, TestSelectivitiesSkewLower) {
  // The paper draws test selectivities geometrically (more low-selectivity
  // queries); the median test cardinality should be below the median train
  // cardinality.
  Env env = MakeEnv();
  auto wl = BuildSearchWorkload(env.dataset, &env.segmentation,
                                SmallOptions()).value();
  auto mean_card = [](const std::vector<LabeledQuery>& queries) {
    double total = 0.0;
    size_t n = 0;
    for (const auto& lq : queries) {
      for (const auto& t : lq.thresholds) {
        total += t.card;
        ++n;
      }
    }
    return total / static_cast<double>(n);
  };
  EXPECT_LT(mean_card(wl.test), mean_card(wl.train));
}

TEST(WorkloadTest, ProfilesKeptWhenRequested) {
  Env env = MakeEnv();
  WorkloadOptions opts = SmallOptions();
  opts.keep_profiles = true;
  auto wl = BuildSearchWorkload(env.dataset, &env.segmentation, opts).value();
  EXPECT_EQ(wl.train_profiles.size(), wl.train.size());
  EXPECT_EQ(wl.test_profiles.size(), wl.test.size());
  opts.keep_profiles = false;
  auto wl2 = BuildSearchWorkload(env.dataset, &env.segmentation, opts).value();
  EXPECT_TRUE(wl2.train_profiles.empty());
}

TEST(WorkloadTest, DeterministicForSeed) {
  Env env = MakeEnv();
  auto a = BuildSearchWorkload(env.dataset, &env.segmentation,
                               SmallOptions()).value();
  auto b = BuildSearchWorkload(env.dataset, &env.segmentation,
                               SmallOptions()).value();
  EXPECT_TRUE(a.train_queries.AllClose(b.train_queries, 0.0f));
  for (size_t i = 0; i < a.train.size(); ++i) {
    for (size_t t = 0; t < a.train[i].thresholds.size(); ++t) {
      EXPECT_EQ(a.train[i].thresholds[t].tau, b.train[i].thresholds[t].tau);
    }
  }
}

TEST(WorkloadTest, RelabelAfterAppendIncreasesCards) {
  Env env = MakeEnv();
  auto wl = BuildSearchWorkload(env.dataset, &env.segmentation,
                                SmallOptions()).value();
  // Duplicate the whole dataset: every cardinality must exactly double
  // (taus unchanged, each point now appears twice).
  Matrix copy = env.dataset.points();
  std::vector<float> old_cards;
  for (const auto& lq : wl.train) {
    for (const auto& t : lq.thresholds) old_cards.push_back(t.card);
  }
  env.dataset.Append(copy);
  // Extend the segmentation so per-segment labels stay well-defined.
  for (size_t i = 0; i < copy.rows(); ++i) {
    const size_t seg = env.segmentation.assignment[i];
    env.segmentation.AddPoint(seg,
                              static_cast<uint32_t>(copy.rows() + i),
                              copy.Row(i), env.dataset.dim(),
                              env.dataset.metric());
  }
  ASSERT_TRUE(RelabelWorkload(env.dataset, &env.segmentation, &wl).ok());
  size_t idx = 0;
  for (const auto& lq : wl.train) {
    for (const auto& t : lq.thresholds) {
      EXPECT_FLOAT_EQ(t.card, 2.0f * old_cards[idx]);
      ++idx;
    }
  }
}

}  // namespace
}  // namespace simcard
