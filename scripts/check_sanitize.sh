#!/usr/bin/env bash
# Builds the tree with sanitizers enabled and runs the tier-1 suite.
#
# Usage: scripts/check_sanitize.sh [mode] [build_dir] [extra ctest args...]
#   mode: asan (default) = AddressSanitizer + UBSan
#         tsan           = ThreadSanitizer (for the serve/ concurrency tests)
#         chaos          = the serve+update chaos drill (concurrent serving
#                          + ingestion + faulted refreshes + kill/recover)
#                          under BOTH sanitizer builds, instead of the full
#                          suite
#   build_dir defaults to build-sanitize-<mode> (kept separate from the
#   normal build so instrumented objects never mix with release ones).
#
# For backward compatibility a first argument that is not a known mode is
# treated as the build directory for asan mode.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

MODE="asan"
case "${1:-}" in
  asan|tsan|chaos)
    MODE="$1"
    shift
    ;;
esac
BUILD_DIR="${1:-"${REPO_ROOT}/build-sanitize-${MODE}"}"
shift || true

if [[ "${MODE}" == "chaos" ]]; then
  # The chaos drill under both sanitizers: ASan+UBSan catches lifetime bugs
  # on the kill/recover path (manager + registry torn down mid-traffic),
  # TSan catches races between serve clients, the ingestion thread, and the
  # faulted refresh. Each sub-build reuses this script's normal modes but
  # runs only the drill gate.
  "${BASH_SOURCE[0]}" asan "${BUILD_DIR}-asan" -R chaos_drill_check "$@"
  "${BASH_SOURCE[0]}" tsan "${BUILD_DIR}-tsan" -R chaos_drill_check "$@"
  echo "sanitizer suite passed (chaos)"
  exit 0
fi

case "${MODE}" in
  asan)
    SANITIZERS="address;undefined"
    # halt_on_error makes UBSan findings fail the test instead of logging.
    export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
    export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"
    ;;
  tsan)
    SANITIZERS="thread"
    export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1 second_deadlock_stack=1}"
    ;;
esac

cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  "-DSIMCARD_SANITIZE=${SANITIZERS}"
cmake --build "${BUILD_DIR}" -j "$(nproc)"

ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" "$@"

if [[ "${MODE}" == "tsan" ]]; then
  # Focused re-runs of the hottest concurrency surfaces beyond their one
  # pass in the full suite above: the micro-batched worker loop (linger
  # wait, shared EstimateSearchBatch, per-request promise fulfillment), the
  # online-update pipeline (delta ingestion + drift refresh + epoch
  # hot-swap racing live readers), and the trace pipeline (per-thread
  # seqlock TraceSink writers racing the tail-sampling collector while
  # models hot-swap).
  ctest --test-dir "${BUILD_DIR}" --output-on-failure \
    -R "ServeStressTest.ReadersRaceModelSwapsMicroBatched" \
    --repeat until-fail:3
  ctest --test-dir "${BUILD_DIR}" --output-on-failure \
    -R "UpdateStressTest.ReadersRaceDeltaIngestionAndRefreshes" \
    --repeat until-fail:3
  ctest --test-dir "${BUILD_DIR}" --output-on-failure \
    -R "TraceStressTest.WritersRaceCollectorDuringModelSwap" \
    --repeat until-fail:3
fi

echo "sanitizer suite passed (${MODE})"
