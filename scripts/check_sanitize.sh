#!/usr/bin/env bash
# Builds the tree with AddressSanitizer + UBSan and runs the tier-1 suite.
#
# Usage: scripts/check_sanitize.sh [build_dir] [extra ctest args...]
#   build_dir defaults to build-sanitize (kept separate from the normal
#   build so the instrumented objects never mix with release ones).
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-"${REPO_ROOT}/build-sanitize"}"
shift || true

cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  "-DSIMCARD_SANITIZE=address;undefined"
cmake --build "${BUILD_DIR}" -j "$(nproc)"

# halt_on_error makes UBSan findings fail the test instead of just logging.
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"

ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" "$@"
echo "sanitizer suite passed"
