#!/usr/bin/env python3
"""Chaos-drill gate: runs `simcard_cli chaos-drill` (serve traffic + delta
ingestion + refreshes under a seeded fault schedule with simulated process
kills and journal recovery) and validates the printed invariants.

Usage:
    check_chaos.py --run-with PATH/TO/simcard_cli [--seeds 2026,7]

For each seed the drill is run twice — once with the default group-commit
journal and once with fsync-per-record (--group-commit=1) plus a tight
delta capacity, so both the batched-durability path and the backpressure +
replay-over-capacity path stay covered. The script independently re-checks
the key=value lines instead of trusting the binary's own PASS verdict:

  - lost_inserts == 0 and final_rows == expected_rows  (zero acked loss)
  - epochs_monotone == 1                               (no epoch regression)
  - clamp_violations == 0                              (estimates clamped)
  - kills >= 1 and recoveries == kills                 (recovery converged)
  - faults_armed >= 1                                  (the drill actually
                                                        injected faults)
  - estimates_checked > 0                              (serving really ran)
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

LINE_RE = re.compile(r"(\w+)=(-?\d+)")


def run_cli(cli, args, timeout=600):
    proc = subprocess.run([cli] + args, capture_output=True, text=True,
                          timeout=timeout)
    return proc


def parse_kv(stdout):
    """Folds every key=value pair on the chaos-drill lines into one dict."""
    values = {}
    for line in stdout.splitlines():
        if not line.startswith("chaos-drill:"):
            continue
        for key, value in LINE_RE.findall(line):
            values[key] = int(value)
    return values


def check_drill(cli, data, model, journal, extra, label):
    problems = []
    args = ["chaos-drill", f"--data={data}", f"--model={model}",
            "--scale=tiny", "--segments=4", f"--journal={journal}"] + extra
    proc = run_cli(cli, args)
    out = proc.stdout
    if "chaos-drill: PASS" not in out:
        problems.append(f"{label}: drill did not print PASS "
                        f"(exit {proc.returncode})\n{out}\n{proc.stderr}")
        return problems
    if proc.returncode != 0:
        problems.append(f"{label}: PASS printed but exit code is "
                        f"{proc.returncode}")
    kv = parse_kv(out)

    def expect(cond, message):
        if not cond:
            problems.append(f"{label}: {message} ({kv})")

    required = ["lost_inserts", "final_rows", "expected_rows",
                "epochs_monotone", "clamp_violations", "kills", "recoveries",
                "faults_armed", "estimates_checked", "acked_inserts"]
    missing = [key for key in required if key not in kv]
    if missing:
        problems.append(f"{label}: missing drill fields {missing}")
        return problems
    expect(kv["lost_inserts"] == 0, "acknowledged inserts were lost")
    expect(kv["final_rows"] == kv["expected_rows"],
           "final row count disagrees with the ack ledger")
    expect(kv["epochs_monotone"] == 1, "served epoch moved backwards")
    expect(kv["clamp_violations"] == 0, "an estimate escaped the clamps")
    expect(kv["kills"] >= 1, "the drill never simulated a kill")
    expect(kv["recoveries"] == kv["kills"], "a recovery did not converge")
    expect(kv["faults_armed"] >= 1, "the drill armed no faults")
    expect(kv["estimates_checked"] > 0, "no estimates were served")
    expect(kv["acked_inserts"] > 0, "no deltas were acknowledged")
    return problems


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--run-with", required=True, metavar="CLI",
                        help="path to the simcard_cli binary")
    parser.add_argument("--seeds", default="2026,7",
                        help="comma-separated drill seeds")
    opts = parser.parse_args()

    tmp = tempfile.mkdtemp(prefix="simcard_chaos_check_")
    data = os.path.join(tmp, "data.bin")
    model = os.path.join(tmp, "model.bin")
    for step in (["generate", "--dataset=glove-sim", "--scale=tiny",
                  f"--out={data}"],
                 ["train", f"--data={data}", "--segments=4", "--scale=tiny",
                  f"--out={model}"]):
        proc = run_cli(opts.run_with, step)
        if proc.returncode != 0:
            print(f"chaos check: setup step {step[0]} failed:\n{proc.stderr}")
            return 1

    problems = []
    for seed in opts.seeds.split(","):
        seed = seed.strip()
        journal = os.path.join(tmp, f"wal-{seed}")
        problems += check_drill(
            opts.run_with, data, model, journal,
            [f"--seed={seed}"], f"seed={seed} default")
        problems += check_drill(
            opts.run_with, data, model, journal,
            [f"--seed={seed}", "--group-commit=1", "--delta-capacity=6",
             "--rounds=6"], f"seed={seed} fsync-per-record")

    if problems:
        print("chaos check: FAILED")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("chaos check: ok (every drill variant held its invariants)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
