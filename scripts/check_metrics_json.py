#!/usr/bin/env python3
"""Sanity-checks simcard observability JSON documents.

Validates three schemas, dispatched on each document's "schema" field:

  simcard.metrics.v1    obs::DumpMetricsJson (simcard_cli --metrics-out,
                        bench --json): required sections, histogram internal
                        consistency (count == sum of bucket counts, min <=
                        p50 <= p99 <= max), well-formed [step, value] series
                        points, and non-negative counters.
  simcard.traces.v1     obs::DumpTraceJson (--trace-out): Chrome trace-event
                        shape, and per trace exactly one root plus complete
                        parent-linked span chains (every parent_id resolves
                        inside its trace).
  simcard.telemetry.v1  obs::TelemetryExporter snapshots (--telemetry-out,
                        telemetry-dump): embedded metrics document, segment
                        health rows, accuracy windows.

Usage:
  check_metrics_json.py report.json [report2.json ...]
  check_metrics_json.py --emit-with /path/to/simcard_cli
      Runs a tiny generate+train+evaluate+update pipeline with
      --metrics-out AND a telemetry-dump drill with --trace-out /
      --telemetry-out into a temp directory, then validates everything the
      binary produced (the ctest entry point). The drill's trace report
      must contain at least one shed, one deadline-exceeded, and one
      fallback-served trace, and the telemetry snapshot must carry
      ReportActual-fed accuracy windows.

Exits 0 when every report passes, 1 with a list of problems otherwise.
"""

import json
import os
import subprocess
import sys
import tempfile

METRICS_SCHEMA = "simcard.metrics.v1"
TRACES_SCHEMA = "simcard.traces.v1"
TELEMETRY_SCHEMA = "simcard.telemetry.v1"

REQUIRED_SECTIONS = ("schema", "meta", "counters", "gauges", "histograms",
                     "series")
HISTOGRAM_FIELDS = ("count", "sum", "mean", "min", "max", "p50", "p90",
                    "p95", "p99", "buckets")

# TraceFlag bits (obs/request_trace.h).
FLAG_SHED = 1 << 0
FLAG_DEADLINE = 1 << 1
FLAG_FALLBACK = 1 << 2

# The online-update pipeline (src/update/) registers its whole family
# eagerly on first use, so a report containing any simcard.update.* metric
# must contain all of these. simcard.update.dropped_erases is the one lazy
# exception: it only appears once a carried erase actually got dropped.
UPDATE_COUNTERS = (
    "simcard.update.inserts",
    "simcard.update.erases",
    "simcard.update.refreshes",
    "simcard.update.segments_refreshed",
    "simcard.update.segments_cloned",
    "simcard.update.epochs_published",
    "simcard.update.full_resegs",
    "simcard.update.refresh_failures",
    "simcard.update.delta_shed",
    "simcard.update.retry.scheduled",
    "simcard.update.retry.exhausted",
)
UPDATE_GAUGES = ("simcard.update.pending_deltas", "simcard.update.degraded")
UPDATE_HISTOGRAMS = ("simcard.update.refresh_ms",
                     "simcard.update.deltas_per_refresh")

# The write-ahead journal and crash-recovery families register eagerly as a
# group on first journal / recovery use (durable mode only), so they are
# all-or-nothing per report just like the update family.
JOURNAL_COUNTERS = (
    "simcard.update.journal.appends",
    "simcard.update.journal.syncs",
    "simcard.update.journal.bytes",
    "simcard.update.journal.append_failures",
    "simcard.update.journal.replays",
    "simcard.update.journal.replayed_records",
    "simcard.update.journal.discarded_bytes",
)
RECOVERY_COUNTERS = (
    "simcard.update.recovery.attempts",
    "simcard.update.recovery.successes",
    "simcard.update.recovery.replayed_inserts",
    "simcard.update.recovery.replayed_erases",
    "simcard.update.recovery.truncated_tails",
    "simcard.update.recovery.quarantined",
)

SEGMENT_HEALTH_FIELDS = ("segment", "evals", "fallbacks", "fallback_rate",
                         "breaker_state", "breaker_trips", "quarantined",
                         "drift_delta_fraction", "drift_centroid_shift",
                         "drift_stale", "delta_backlog")
BREAKER_STATES = ("closed", "open", "half-open")


def check_histogram(name, hist, problems):
    for field in HISTOGRAM_FIELDS:
        if field not in hist:
            problems.append(f"histogram {name}: missing field '{field}'")
            return
    count = hist["count"]
    if count < 0:
        problems.append(f"histogram {name}: negative count")
    bucket_total = 0
    for bucket in hist["buckets"]:
        if "le" not in bucket or "count" not in bucket:
            problems.append(f"histogram {name}: malformed bucket {bucket}")
            return
        if bucket["count"] <= 0:
            # Buckets are sparse; zero-count entries should be omitted.
            problems.append(f"histogram {name}: empty bucket emitted")
        bucket_total += bucket["count"]
    if bucket_total != count:
        problems.append(
            f"histogram {name}: bucket counts sum to {bucket_total}, "
            f"count is {count}")
    if count > 0:
        lo, hi = hist["min"], hist["max"]
        quantiles = [hist["p50"], hist["p90"], hist["p95"], hist["p99"]]
        if sorted(quantiles) != quantiles:
            problems.append(f"histogram {name}: quantiles not monotone "
                            f"{quantiles}")
        for q in quantiles:
            if not (lo - 1e-9 <= q <= hi + 1e-9):
                problems.append(
                    f"histogram {name}: quantile {q} outside [min, max] = "
                    f"[{lo}, {hi}]")
        if not (lo <= hist["mean"] <= hi):
            problems.append(f"histogram {name}: mean outside [min, max]")


def check_update_metrics(report, problems):
    """Family + cross-consistency checks for simcard.update.* metrics."""
    names = (set(report["counters"]) | set(report["gauges"])
             | set(report["histograms"]))
    if not any(n.startswith("simcard.update.") for n in names):
        return
    for name in UPDATE_COUNTERS:
        if name not in report["counters"]:
            problems.append(f"update family: missing counter {name}")
    for name in UPDATE_GAUGES:
        if name not in report["gauges"]:
            problems.append(f"update family: missing gauge {name}")
    for name in UPDATE_HISTOGRAMS:
        if name not in report["histograms"]:
            problems.append(f"update family: missing histogram {name}")
    if problems:
        return
    # Each successful refresh records the counter and both histograms
    # exactly once, so within one process report they must agree.
    refreshes = report["counters"]["simcard.update.refreshes"]
    for name in UPDATE_HISTOGRAMS:
        count = report["histograms"][name]["count"]
        if count != refreshes:
            problems.append(
                f"update family: {name} has count {count}, expected "
                f"{refreshes} (== simcard.update.refreshes)")
    if report["gauges"]["simcard.update.pending_deltas"] < 0:
        problems.append("update family: negative pending_deltas gauge")
    if report["gauges"]["simcard.update.degraded"] not in (0, 1):
        problems.append("update family: degraded gauge must be 0 or 1")

    # Durability families: all-or-nothing, plus the few cross-counter
    # relations that hold in any process.
    for family, members in (("journal", JOURNAL_COUNTERS),
                            ("recovery", RECOVERY_COUNTERS)):
        prefix = f"simcard.update.{family}."
        if not any(n.startswith(prefix) for n in names):
            continue
        missing = [n for n in members if n not in report["counters"]]
        if missing:
            problems.append(f"{family} family: missing counters {missing}")
    counters = report["counters"]
    if "simcard.update.recovery.attempts" in counters:
        if (counters["simcard.update.recovery.successes"]
                > counters["simcard.update.recovery.attempts"]):
            problems.append("recovery family: more successes than attempts")
    if "simcard.update.journal.appends" in counters:
        if (counters["simcard.update.journal.bytes"]
                < counters["simcard.update.journal.appends"]):
            problems.append("journal family: fewer bytes than appends")


def check_metrics_report(report, problems):
    for section in REQUIRED_SECTIONS:
        if section not in report:
            problems.append(f"missing top-level section '{section}'")
    if problems:
        return
    if "timestamp_utc" not in report["meta"]:
        problems.append("meta: missing timestamp_utc")

    for name, value in report["counters"].items():
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(f"counter {name}: bad value {value!r}")
    for name, hist in report["histograms"].items():
        check_histogram(name, hist, problems)
    for name, points in report["series"].items():
        if any(not isinstance(p, list) or len(p) != 2 for p in points):
            problems.append(f"series {name}: points must be [step, value]")
            continue
        if any(not all(isinstance(x, (int, float)) for x in p)
               for p in points):
            problems.append(f"series {name}: non-numeric point")
            continue
        # No ordering constraint on steps: one process may train several
        # estimators, each appending its own epoch numbering to the same
        # series, so steps legitimately reset or repeat across runs.
    check_update_metrics(report, problems)


def group_traces(report):
    """trace_id -> list of events; assumes the document already parsed."""
    traces = {}
    for event in report.get("traceEvents", []):
        tid = event.get("args", {}).get("trace_id")
        traces.setdefault(tid, []).append(event)
    return traces


def check_traces_report(report, problems):
    for key in ("meta", "traceEvents", "displayTimeUnit"):
        if key not in report:
            problems.append(f"missing top-level key '{key}'")
    if problems:
        return
    meta = report["meta"]
    for key in ("timestamp_utc", "traces_seen", "traces_kept",
                "kept_flagged", "kept_slowest", "incomplete_dropped"):
        if key not in meta:
            problems.append(f"meta: missing '{key}'")
    kept = 0
    for event in report["traceEvents"]:
        args = event.get("args", {})
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                problems.append(f"event {event}: missing '{key}'")
                return
        for key in ("trace_id", "span_id", "parent_id"):
            if key not in args:
                problems.append(
                    f"event {event['name']}: args missing '{key}'")
                return
        if event["ph"] not in ("X", "i"):
            problems.append(f"event {event['name']}: ph '{event['ph']}' "
                            "is neither a duration nor an instant")
        if event["ph"] == "X" and event.get("dur", -1) < 0:
            problems.append(f"event {event['name']}: duration event "
                            "without a non-negative 'dur'")

    for trace_id, events in group_traces(report).items():
        roots = [e for e in events if e["args"]["parent_id"] == 0]
        if len(roots) != 1:
            problems.append(f"trace {trace_id}: expected exactly one root "
                            f"event, found {len(roots)}")
            continue
        kept += 1
        root = roots[0]
        if "flags" not in root["args"] or "flag_names" not in root["args"]:
            problems.append(f"trace {trace_id}: root event lacks "
                            "flags/flag_names")
        # Complete parent links: every non-root event's parent span must
        # itself be present in the trace.
        span_ids = {e["args"]["span_id"] for e in events}
        for event in events:
            parent = event["args"]["parent_id"]
            if parent != 0 and parent not in span_ids:
                problems.append(
                    f"trace {trace_id}: event '{event['name']}' has "
                    f"dangling parent span {parent}")
    if kept != report["meta"].get("traces_kept"):
        problems.append(f"meta: traces_kept says "
                        f"{report['meta'].get('traces_kept')}, document "
                        f"contains {kept} complete traces")


def check_accuracy_stats(prefix, stats, problems):
    for key in ("reports", "mean", "p50", "p90", "p99", "max"):
        if key not in stats:
            problems.append(f"{prefix}: missing '{key}'")
            return
    if stats["reports"] > 0:
        qs = [stats["p50"], stats["p90"], stats["p99"]]
        if sorted(qs) != qs:
            problems.append(f"{prefix}: quantiles not monotone {qs}")
        if min(qs) < 1.0 - 1e-9:
            problems.append(f"{prefix}: q-error below 1 ({min(qs)})")


def check_telemetry_report(report, problems):
    for key in ("meta", "metrics", "segment_health", "accuracy"):
        if key not in report:
            problems.append(f"missing top-level key '{key}'")
    if problems:
        return
    for key in ("timestamp_utc", "seq", "interval_ms"):
        if key not in report["meta"]:
            problems.append(f"meta: missing '{key}'")
    metrics = report["metrics"]
    if metrics.get("schema") != METRICS_SCHEMA:
        problems.append("embedded metrics document has schema "
                        f"{metrics.get('schema')!r}, expected "
                        f"'{METRICS_SCHEMA}'")
    else:
        check_metrics_report(metrics, problems)
    for row in report["segment_health"]:
        for field in SEGMENT_HEALTH_FIELDS:
            if field not in row:
                problems.append(f"segment_health row {row.get('segment')}: "
                                f"missing '{field}'")
                break
        else:
            if row["breaker_state"] not in BREAKER_STATES:
                problems.append(
                    f"segment_health row {row['segment']}: breaker_state "
                    f"{row['breaker_state']!r} not in {BREAKER_STATES}")
            if not (0.0 <= row["fallback_rate"] <= 1.0):
                problems.append(f"segment_health row {row['segment']}: "
                                "fallback_rate outside [0, 1]")
    accuracy = report["accuracy"]
    if accuracy:
        for key in ("window", "total_reports", "overall", "by_tau",
                    "by_segment"):
            if key not in accuracy:
                problems.append(f"accuracy: missing '{key}'")
        if "overall" in accuracy:
            check_accuracy_stats("accuracy.overall", accuracy["overall"],
                                 problems)
        for row in accuracy.get("by_segment", []):
            check_accuracy_stats(f"accuracy.segment[{row.get('segment')}]",
                                 row.get("stats", {}), problems)


def check_report(path):
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"cannot parse: {e}"]

    schema = report.get("schema")
    if schema == METRICS_SCHEMA:
        check_metrics_report(report, problems)
    elif schema == TRACES_SCHEMA:
        check_traces_report(report, problems)
    elif schema == TELEMETRY_SCHEMA:
        check_telemetry_report(report, problems)
    else:
        problems.append(f"unknown schema {schema!r} (expected one of "
                        f"{METRICS_SCHEMA}, {TRACES_SCHEMA}, "
                        f"{TELEMETRY_SCHEMA})")
    return problems


def check_drill_outputs(trace_path, telemetry_path):
    """The telemetry-dump drill's hard requirements beyond schema shape."""
    problems = []
    with open(trace_path, "r", encoding="utf-8") as f:
        traces = json.load(f)
    flag_classes = {FLAG_SHED: 0, FLAG_DEADLINE: 0, FLAG_FALLBACK: 0}
    for events in group_traces(traces).values():
        roots = [e for e in events if e["args"]["parent_id"] == 0]
        if len(roots) != 1:
            continue
        flags = roots[0]["args"].get("flags", 0)
        for bit in flag_classes:
            if flags & bit:
                flag_classes[bit] += 1
    names = {FLAG_SHED: "shed", FLAG_DEADLINE: "deadline-exceeded",
             FLAG_FALLBACK: "fallback-served"}
    for bit, count in flag_classes.items():
        if count == 0:
            problems.append(f"drill traces: no {names[bit]} trace kept")

    with open(telemetry_path, "r", encoding="utf-8") as f:
        telemetry = json.load(f)
    accuracy = telemetry.get("accuracy") or {}
    if accuracy.get("total_reports", 0) <= 0:
        problems.append("drill telemetry: accuracy windows are empty "
                        "(ReportActual feedback missing)")
    if not telemetry.get("segment_health"):
        problems.append("drill telemetry: segment_health is empty")
    return problems


def emit_with(cli_path):
    """Runs the CLI pipeline on a tiny dataset, returns report paths and
    any drill-level problems."""
    tmp = tempfile.mkdtemp(prefix="simcard_metrics_check_")
    data = os.path.join(tmp, "data.bin")
    model = os.path.join(tmp, "model.bin")
    reports = []

    def run(args, report_name=None):
        cmd = [cli_path] + args
        if report_name is not None:
            report = os.path.join(tmp, report_name)
            cmd.append(f"--metrics-out={report}")
            reports.append(report)
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL,
                       timeout=600)

    run(["generate", "--dataset=glove-sim", "--scale=tiny", f"--out={data}"])
    run(["train", f"--data={data}", "--segments=4", "--scale=tiny",
         f"--out={model}"], report_name="train.json")
    run(["evaluate", f"--data={data}", f"--model={model}", "--segments=4",
         "--scale=tiny"], report_name="evaluate.json")
    run(["update-bench", f"--data={data}", f"--model={model}",
         "--segments=4", "--scale=tiny"], report_name="update.json")

    # The chaos drill exercises the durable path (journal appends/syncs,
    # simulated kills, journal recovery), so its report must carry the
    # simcard.update.journal.* and simcard.update.recovery.* families.
    run(["chaos-drill", f"--data={data}", f"--model={model}",
         "--segments=4", "--scale=tiny",
         f"--journal={os.path.join(tmp, 'chaos-wal')}"],
        report_name="chaos.json")

    # The observability drill: phased traffic through the serving stack,
    # with the trace report and the telemetry snapshot as hard gates.
    trace_path = os.path.join(tmp, "traces.json")
    telemetry_stem = os.path.join(tmp, "telemetry")
    run(["telemetry-dump", f"--data={data}", f"--model={model}",
         f"--trace-out={trace_path}",
         f"--telemetry-out={telemetry_stem}"])
    telemetry_path = telemetry_stem + "-latest.json"
    reports.append(trace_path)
    reports.append(telemetry_path)
    return reports, check_drill_outputs(trace_path, telemetry_path)


def main(argv):
    drill_problems = []
    if len(argv) >= 2 and argv[0] == "--emit-with":
        paths, drill_problems = emit_with(argv[1])
    elif argv:
        paths = argv
    else:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    failures = 0
    for path in paths:
        problems = check_report(path)
        if problems:
            failures += 1
            print(f"FAIL {path}")
            for p in problems:
                print(f"  - {p}")
        else:
            print(f"OK   {path}")
    if drill_problems:
        failures += 1
        print("FAIL telemetry-dump drill")
        for p in drill_problems:
            print(f"  - {p}")
    elif len(argv) >= 2 and argv[0] == "--emit-with":
        print("OK   telemetry-dump drill (shed + deadline + fallback traces"
              ", accuracy windows)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
