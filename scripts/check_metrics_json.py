#!/usr/bin/env python3
"""Sanity-checks a simcard metrics JSON run report.

Validates the "simcard.metrics.v1" schema produced by obs::DumpMetricsJson
(simcard_cli --metrics-out, bench --json): required sections, histogram
internal consistency (count == sum of bucket counts, min <= p50 <= p99 <=
max), well-formed [step, value] series points, and non-negative counters.

Usage:
  check_metrics_json.py report.json [report2.json ...]
  check_metrics_json.py --emit-with /path/to/simcard_cli
      Runs a tiny generate+train+evaluate pipeline with --metrics-out into a
      temp directory and validates the reports it produces (the ctest entry
      point, so the checker is exercised against a fresh binary).

Exits 0 when every report passes, 1 with a list of problems otherwise.
"""

import json
import os
import subprocess
import sys
import tempfile

SCHEMA = "simcard.metrics.v1"
REQUIRED_SECTIONS = ("schema", "meta", "counters", "gauges", "histograms",
                     "series")
HISTOGRAM_FIELDS = ("count", "sum", "mean", "min", "max", "p50", "p90",
                    "p95", "p99", "buckets")

# The online-update pipeline (src/update/) registers its whole family
# eagerly on first use, so a report containing any simcard.update.* metric
# must contain all of these. simcard.update.dropped_erases is the one lazy
# exception: it only appears once a carried erase actually got dropped.
UPDATE_COUNTERS = (
    "simcard.update.inserts",
    "simcard.update.erases",
    "simcard.update.refreshes",
    "simcard.update.segments_refreshed",
    "simcard.update.segments_cloned",
    "simcard.update.epochs_published",
    "simcard.update.full_resegs",
)
UPDATE_GAUGES = ("simcard.update.pending_deltas",)
UPDATE_HISTOGRAMS = ("simcard.update.refresh_ms",
                     "simcard.update.deltas_per_refresh")


def check_histogram(name, hist, problems):
    for field in HISTOGRAM_FIELDS:
        if field not in hist:
            problems.append(f"histogram {name}: missing field '{field}'")
            return
    count = hist["count"]
    if count < 0:
        problems.append(f"histogram {name}: negative count")
    bucket_total = 0
    for bucket in hist["buckets"]:
        if "le" not in bucket or "count" not in bucket:
            problems.append(f"histogram {name}: malformed bucket {bucket}")
            return
        if bucket["count"] <= 0:
            # Buckets are sparse; zero-count entries should be omitted.
            problems.append(f"histogram {name}: empty bucket emitted")
        bucket_total += bucket["count"]
    if bucket_total != count:
        problems.append(
            f"histogram {name}: bucket counts sum to {bucket_total}, "
            f"count is {count}")
    if count > 0:
        lo, hi = hist["min"], hist["max"]
        quantiles = [hist["p50"], hist["p90"], hist["p95"], hist["p99"]]
        if sorted(quantiles) != quantiles:
            problems.append(f"histogram {name}: quantiles not monotone "
                            f"{quantiles}")
        for q in quantiles:
            if not (lo - 1e-9 <= q <= hi + 1e-9):
                problems.append(
                    f"histogram {name}: quantile {q} outside [min, max] = "
                    f"[{lo}, {hi}]")
        if not (lo <= hist["mean"] <= hi):
            problems.append(f"histogram {name}: mean outside [min, max]")


def check_update_metrics(report, problems):
    """Family + cross-consistency checks for simcard.update.* metrics."""
    names = (set(report["counters"]) | set(report["gauges"])
             | set(report["histograms"]))
    if not any(n.startswith("simcard.update.") for n in names):
        return
    for name in UPDATE_COUNTERS:
        if name not in report["counters"]:
            problems.append(f"update family: missing counter {name}")
    for name in UPDATE_GAUGES:
        if name not in report["gauges"]:
            problems.append(f"update family: missing gauge {name}")
    for name in UPDATE_HISTOGRAMS:
        if name not in report["histograms"]:
            problems.append(f"update family: missing histogram {name}")
    if problems:
        return
    # Each successful refresh records the counter and both histograms
    # exactly once, so within one process report they must agree.
    refreshes = report["counters"]["simcard.update.refreshes"]
    for name in UPDATE_HISTOGRAMS:
        count = report["histograms"][name]["count"]
        if count != refreshes:
            problems.append(
                f"update family: {name} has count {count}, expected "
                f"{refreshes} (== simcard.update.refreshes)")
    if report["gauges"]["simcard.update.pending_deltas"] < 0:
        problems.append("update family: negative pending_deltas gauge")


def check_report(path):
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return [f"cannot parse: {e}"]

    for section in REQUIRED_SECTIONS:
        if section not in report:
            problems.append(f"missing top-level section '{section}'")
    if problems:
        return problems
    if report["schema"] != SCHEMA:
        problems.append(f"schema is '{report['schema']}', expected "
                        f"'{SCHEMA}'")
    if "timestamp_utc" not in report["meta"]:
        problems.append("meta: missing timestamp_utc")

    for name, value in report["counters"].items():
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(f"counter {name}: bad value {value!r}")
    for name, hist in report["histograms"].items():
        check_histogram(name, hist, problems)
    for name, points in report["series"].items():
        if any(not isinstance(p, list) or len(p) != 2 for p in points):
            problems.append(f"series {name}: points must be [step, value]")
            continue
        if any(not all(isinstance(x, (int, float)) for x in p)
               for p in points):
            problems.append(f"series {name}: non-numeric point")
            continue
        # No ordering constraint on steps: one process may train several
        # estimators, each appending its own epoch numbering to the same
        # series, so steps legitimately reset or repeat across runs.
    check_update_metrics(report, problems)
    return problems


def emit_with(cli_path):
    """Runs the CLI pipeline on a tiny dataset, returns report paths."""
    tmp = tempfile.mkdtemp(prefix="simcard_metrics_check_")
    data = os.path.join(tmp, "data.bin")
    model = os.path.join(tmp, "model.bin")
    reports = []

    def run(args, report_name=None):
        cmd = [cli_path] + args
        if report_name is not None:
            report = os.path.join(tmp, report_name)
            cmd.append(f"--metrics-out={report}")
            reports.append(report)
        subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL,
                       timeout=600)

    run(["generate", "--dataset=glove-sim", "--scale=tiny", f"--out={data}"])
    run(["train", f"--data={data}", "--segments=4", "--scale=tiny",
         f"--out={model}"], report_name="train.json")
    run(["evaluate", f"--data={data}", f"--model={model}", "--segments=4",
         "--scale=tiny"], report_name="evaluate.json")
    run(["update-bench", f"--data={data}", f"--model={model}",
         "--segments=4", "--scale=tiny"], report_name="update.json")
    return reports


def main(argv):
    if len(argv) >= 2 and argv[0] == "--emit-with":
        paths = emit_with(argv[1])
    elif argv:
        paths = argv
    else:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    failures = 0
    for path in paths:
        problems = check_report(path)
        if problems:
            failures += 1
            print(f"FAIL {path}")
            for p in problems:
                print(f"  - {p}")
        else:
            print(f"OK   {path}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
