#!/usr/bin/env bash
# One-command reproduction: build, test, and regenerate every table/figure.
#
#   scripts/reproduce.sh [scale]   # scale in {tiny, small, full}; default small
#
# Outputs land in test_output.txt and bench_output.txt at the repo root,
# plus one BENCH_<binary>.json metrics report per bench (validated with
# scripts/check_metrics_json.py).
set -euo pipefail
cd "$(dirname "$0")/.."
SCALE="${1:-small}"

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt

for b in build/bench/*; do
  "$b" --scale="$SCALE" --json="BENCH_$(basename "$b").json"
done 2>&1 | tee bench_output.txt

python3 scripts/check_metrics_json.py BENCH_*.json
