#!/usr/bin/env bash
# Regenerates the committed bench snapshots at the repo root:
#
#   BENCH_serve.json    bench_serve_throughput   (serving-layer QPS)
#   BENCH_batch.json    bench_batch_throughput   (batched pipeline QPS)
#   BENCH_table6.json   bench_table6_search_latency (per-query latency)
#   BENCH_update.json   bench_update_staleness   (refresh cost/accuracy)
#   BENCH_journal.json  bench_journal_overhead   (WAL durability tax)
#
# The snapshots pin the perf trajectory for review: regenerate on a perf-
# relevant change and commit the diff alongside it. Numbers are machine-
# dependent — reviewers compare metric *presence and ratios* across a
# snapshot's history on comparable hardware, not absolute values across
# machines (each report's meta block records host/compiler/build for that).
#
#   scripts/update_bench_snapshots.sh [scale]   # default tiny (fast; the
#                                               # committed snapshots' scale)
#
# Every report is validated against the simcard.metrics.v1 schema before it
# replaces the committed file.
set -euo pipefail
cd "$(dirname "$0")/.."
SCALE="${1:-tiny}"
BUILD_DIR="${BUILD_DIR:-build}"
# Short but non-trivial measurement window (plain seconds — the bundled
# google-benchmark does not parse the "0.1s" suffixed form).
MIN_TIME="${MIN_TIME:-0.1}"

if [[ ! -d "$BUILD_DIR" ]]; then
  cmake -B "$BUILD_DIR" -S .
fi
cmake --build "$BUILD_DIR" -j --target \
  bench_serve_throughput bench_batch_throughput \
  bench_table6_search_latency bench_update_staleness \
  bench_journal_overhead

run() {
  local binary="$1" out="$2"
  shift 2
  echo "=== $binary -> $out ==="
  "$BUILD_DIR/bench/$binary" --scale="$SCALE" --seed=2026 --json="$out" \
    --benchmark_min_time="$MIN_TIME" "$@"
  python3 scripts/check_metrics_json.py "$out"
}

run bench_serve_throughput BENCH_serve.json --clients=1,2 --serve-threads=2
run bench_batch_throughput BENCH_batch.json
run bench_table6_search_latency BENCH_table6.json
# update_staleness is a table bench, not google-benchmark: no min-time flag.
echo "=== bench_update_staleness -> BENCH_update.json ==="
"$BUILD_DIR/bench/bench_update_staleness" --scale="$SCALE" --seed=2026 \
  --json=BENCH_update.json
python3 scripts/check_metrics_json.py BENCH_update.json
# journal_overhead is a table bench too (WAL durability tax on serving).
echo "=== bench_journal_overhead -> BENCH_journal.json ==="
"$BUILD_DIR/bench/bench_journal_overhead" --scale="$SCALE" --seed=2026 \
  --json=BENCH_journal.json
python3 scripts/check_metrics_json.py BENCH_journal.json

echo "snapshots updated: BENCH_serve.json BENCH_batch.json" \
     "BENCH_table6.json BENCH_update.json BENCH_journal.json"
