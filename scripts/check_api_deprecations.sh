#!/usr/bin/env bash
# Gate on the deprecated estimation entry points: no in-tree production code
# (src/, bench/, examples/) may call the legacy overloads that the unified
# EstimateRequest API replaced:
#
#   Estimator/GlEstimator::EstimateSearch(const float*, float[, policy])
#   EstimationService::Submit(const float*, size_t, float)
#   EstimationService::Submit(std::vector<float>, float, double)
#
# The shims themselves stay (external callers get a migration window) and
# tests/ intentionally keep exercising them, so the scan skips tests/ and
# the files that define the shims.
#
# Usage: scripts/check_api_deprecations.sh [repo_root]
set -euo pipefail

REPO_ROOT="${1:-"$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"}"
cd "${REPO_ROOT}"

# Files allowed to mention the deprecated names: the shim definitions.
ALLOWLIST=(
  "src/core/estimator.h"
  "src/core/gl_estimator.h"
  "src/serve/estimation_service.h"
)

is_allowed() {
  local file="$1"
  for allowed in "${ALLOWLIST[@]}"; do
    [[ "${file}" == "${allowed}" ]] && return 0
  done
  return 1
}

fail=0

# `EstimateSearch(` matches calls and declarations of the deprecated single
# overload but not EstimateSearchBatch(.
while IFS=: read -r file line text; do
  if ! is_allowed "${file}"; then
    echo "deprecated EstimateSearch( call: ${file}:${line}: ${text}" >&2
    fail=1
  fi
done < <(grep -rn --include='*.cc' --include='*.h' 'EstimateSearch(' \
           src bench examples 2>/dev/null || true)

# Legacy Submit overloads: a Submit call whose first argument is not an
# EstimateRequest. Heuristic: flag Submit( followed by std::vector, a raw
# pointer + dim pattern, or std::move of a float vector.
while IFS=: read -r file line text; do
  if ! is_allowed "${file}"; then
    echo "deprecated Submit overload call: ${file}:${line}: ${text}" >&2
    fail=1
  fi
done < <(grep -rnE --include='*.cc' --include='*.h' \
           'Submit\((std::vector<float>|std::move\([a-zA-Z_]+\), *[a-zA-Z_0-9.]+, )' \
           src bench examples 2>/dev/null || true)

if [[ "${fail}" -ne 0 ]]; then
  echo "check_api_deprecations: migrate the callers above to" >&2
  echo "  Estimate(const EstimateRequest&) / Submit(const EstimateRequest&)" >&2
  exit 1
fi
echo "check_api_deprecations: no deprecated estimation calls in src/ bench/ examples/"
