#!/usr/bin/env bash
# Gate on the deprecated estimation entry points: no in-tree code (src/,
# bench/, examples/, tests/) may call the legacy overloads that the unified
# EstimateRequest API replaced:
#
#   Estimator/GlEstimator::EstimateSearch(const float*, float[, policy])
#   EstimationService::Submit(const float*, size_t, float)
#   EstimationService::Submit(std::vector<float>, float, double)
#
# The shims themselves stay (external callers get a migration window): the
# defining headers are allowlisted, and tests/core/deprecated_shim_test.cc
# is the one test allowed to call them — it pins each shim to the request
# API answer so the compatibility surface keeps working. Everything else in
# tests/ goes through tests/support/request_helpers.h or builds an
# EstimateRequest directly.
#
# Usage: scripts/check_api_deprecations.sh [repo_root]
set -euo pipefail

REPO_ROOT="${1:-"$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"}"
cd "${REPO_ROOT}"

SCAN_DIRS=(src bench examples tests)

# Files allowed to mention the deprecated names: the shim definitions and
# the parity test that keeps them covered.
ALLOWLIST=(
  "src/core/estimator.h"
  "src/core/gl_estimator.h"
  "src/serve/estimation_service.h"
  "tests/core/deprecated_shim_test.cc"
)

is_allowed() {
  local file="$1"
  for allowed in "${ALLOWLIST[@]}"; do
    [[ "${file}" == "${allowed}" ]] && return 0
  done
  return 1
}

fail=0

# `EstimateSearch(` matches calls and declarations of the deprecated single
# overload but not EstimateSearchBatch(.
while IFS=: read -r file line text; do
  if ! is_allowed "${file}"; then
    echo "deprecated EstimateSearch( call: ${file}:${line}: ${text}" >&2
    fail=1
  fi
done < <(grep -rn --include='*.cc' --include='*.h' 'EstimateSearch(' \
           "${SCAN_DIRS[@]}" 2>/dev/null || true)

# Legacy Submit overloads: a Submit call whose first argument is not an
# EstimateRequest. Heuristic, tuned to the shapes that appear in practice:
#   Submit(std::vector<float>...)        explicit vector first arg
#   Submit(std::move(q), tau, ...)       moved vector + two more args
#   Submit(MakeQuery(), tau, ...)        function-call first arg + more args
#   Submit(q.data(), dim, tau)           pointer + dim shim
# ThreadPool::Submit(lambda) is not caught: a lambda first arg starts with
# `[`, and single-argument std::move(fn) has no trailing comma.
while IFS=: read -r file line text; do
  if ! is_allowed "${file}"; then
    echo "deprecated Submit overload call: ${file}:${line}: ${text}" >&2
    fail=1
  fi
done < <(grep -rnE --include='*.cc' --include='*.h' \
           'Submit\((std::vector<float>|std::move\([a-zA-Z_]+\), *[a-zA-Z_0-9.]+, |[a-zA-Z_][a-zA-Z_0-9]*\(\), |[a-zA-Z_][a-zA-Z_0-9.]*\.data\(\), )' \
           "${SCAN_DIRS[@]}" 2>/dev/null || true)

if [[ "${fail}" -ne 0 ]]; then
  echo "check_api_deprecations: migrate the callers above to" >&2
  echo "  Estimate(const EstimateRequest&) / Submit(const EstimateRequest&)" >&2
  echo "  (tests can use tests/support/request_helpers.h)" >&2
  exit 1
fi
echo "check_api_deprecations: no deprecated estimation calls in" \
     "src/ bench/ examples/ tests/"
