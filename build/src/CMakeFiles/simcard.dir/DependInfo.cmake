
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/cli_app.cc" "src/CMakeFiles/simcard.dir/app/cli_app.cc.o" "gcc" "src/CMakeFiles/simcard.dir/app/cli_app.cc.o.d"
  "/root/repo/src/baselines/cardnet_estimator.cc" "src/CMakeFiles/simcard.dir/baselines/cardnet_estimator.cc.o" "gcc" "src/CMakeFiles/simcard.dir/baselines/cardnet_estimator.cc.o.d"
  "/root/repo/src/baselines/kernel_estimator.cc" "src/CMakeFiles/simcard.dir/baselines/kernel_estimator.cc.o" "gcc" "src/CMakeFiles/simcard.dir/baselines/kernel_estimator.cc.o.d"
  "/root/repo/src/baselines/mlp_estimator.cc" "src/CMakeFiles/simcard.dir/baselines/mlp_estimator.cc.o" "gcc" "src/CMakeFiles/simcard.dir/baselines/mlp_estimator.cc.o.d"
  "/root/repo/src/baselines/sampling_estimator.cc" "src/CMakeFiles/simcard.dir/baselines/sampling_estimator.cc.o" "gcc" "src/CMakeFiles/simcard.dir/baselines/sampling_estimator.cc.o.d"
  "/root/repo/src/cluster/dbscan.cc" "src/CMakeFiles/simcard.dir/cluster/dbscan.cc.o" "gcc" "src/CMakeFiles/simcard.dir/cluster/dbscan.cc.o.d"
  "/root/repo/src/cluster/kmeans.cc" "src/CMakeFiles/simcard.dir/cluster/kmeans.cc.o" "gcc" "src/CMakeFiles/simcard.dir/cluster/kmeans.cc.o.d"
  "/root/repo/src/cluster/lsh.cc" "src/CMakeFiles/simcard.dir/cluster/lsh.cc.o" "gcc" "src/CMakeFiles/simcard.dir/cluster/lsh.cc.o.d"
  "/root/repo/src/cluster/pca.cc" "src/CMakeFiles/simcard.dir/cluster/pca.cc.o" "gcc" "src/CMakeFiles/simcard.dir/cluster/pca.cc.o.d"
  "/root/repo/src/cluster/segmentation.cc" "src/CMakeFiles/simcard.dir/cluster/segmentation.cc.o" "gcc" "src/CMakeFiles/simcard.dir/cluster/segmentation.cc.o.d"
  "/root/repo/src/common/cli.cc" "src/CMakeFiles/simcard.dir/common/cli.cc.o" "gcc" "src/CMakeFiles/simcard.dir/common/cli.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/simcard.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/simcard.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/simcard.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/simcard.dir/common/rng.cc.o.d"
  "/root/repo/src/common/serialize.cc" "src/CMakeFiles/simcard.dir/common/serialize.cc.o" "gcc" "src/CMakeFiles/simcard.dir/common/serialize.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/simcard.dir/common/status.cc.o" "gcc" "src/CMakeFiles/simcard.dir/common/status.cc.o.d"
  "/root/repo/src/common/stopwatch.cc" "src/CMakeFiles/simcard.dir/common/stopwatch.cc.o" "gcc" "src/CMakeFiles/simcard.dir/common/stopwatch.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/simcard.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/simcard.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/core/card_model.cc" "src/CMakeFiles/simcard.dir/core/card_model.cc.o" "gcc" "src/CMakeFiles/simcard.dir/core/card_model.cc.o.d"
  "/root/repo/src/core/estimator.cc" "src/CMakeFiles/simcard.dir/core/estimator.cc.o" "gcc" "src/CMakeFiles/simcard.dir/core/estimator.cc.o.d"
  "/root/repo/src/core/features.cc" "src/CMakeFiles/simcard.dir/core/features.cc.o" "gcc" "src/CMakeFiles/simcard.dir/core/features.cc.o.d"
  "/root/repo/src/core/gl_estimator.cc" "src/CMakeFiles/simcard.dir/core/gl_estimator.cc.o" "gcc" "src/CMakeFiles/simcard.dir/core/gl_estimator.cc.o.d"
  "/root/repo/src/core/global_model.cc" "src/CMakeFiles/simcard.dir/core/global_model.cc.o" "gcc" "src/CMakeFiles/simcard.dir/core/global_model.cc.o.d"
  "/root/repo/src/core/join_estimator.cc" "src/CMakeFiles/simcard.dir/core/join_estimator.cc.o" "gcc" "src/CMakeFiles/simcard.dir/core/join_estimator.cc.o.d"
  "/root/repo/src/core/local_model.cc" "src/CMakeFiles/simcard.dir/core/local_model.cc.o" "gcc" "src/CMakeFiles/simcard.dir/core/local_model.cc.o.d"
  "/root/repo/src/core/model_size.cc" "src/CMakeFiles/simcard.dir/core/model_size.cc.o" "gcc" "src/CMakeFiles/simcard.dir/core/model_size.cc.o.d"
  "/root/repo/src/core/qes.cc" "src/CMakeFiles/simcard.dir/core/qes.cc.o" "gcc" "src/CMakeFiles/simcard.dir/core/qes.cc.o.d"
  "/root/repo/src/core/qes_estimator.cc" "src/CMakeFiles/simcard.dir/core/qes_estimator.cc.o" "gcc" "src/CMakeFiles/simcard.dir/core/qes_estimator.cc.o.d"
  "/root/repo/src/core/tuner.cc" "src/CMakeFiles/simcard.dir/core/tuner.cc.o" "gcc" "src/CMakeFiles/simcard.dir/core/tuner.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/simcard.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/simcard.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/generators.cc" "src/CMakeFiles/simcard.dir/data/generators.cc.o" "gcc" "src/CMakeFiles/simcard.dir/data/generators.cc.o.d"
  "/root/repo/src/data/sampling.cc" "src/CMakeFiles/simcard.dir/data/sampling.cc.o" "gcc" "src/CMakeFiles/simcard.dir/data/sampling.cc.o.d"
  "/root/repo/src/dist/metric.cc" "src/CMakeFiles/simcard.dir/dist/metric.cc.o" "gcc" "src/CMakeFiles/simcard.dir/dist/metric.cc.o.d"
  "/root/repo/src/eval/harness.cc" "src/CMakeFiles/simcard.dir/eval/harness.cc.o" "gcc" "src/CMakeFiles/simcard.dir/eval/harness.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/simcard.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/simcard.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/reporter.cc" "src/CMakeFiles/simcard.dir/eval/reporter.cc.o" "gcc" "src/CMakeFiles/simcard.dir/eval/reporter.cc.o.d"
  "/root/repo/src/index/ground_truth.cc" "src/CMakeFiles/simcard.dir/index/ground_truth.cc.o" "gcc" "src/CMakeFiles/simcard.dir/index/ground_truth.cc.o.d"
  "/root/repo/src/index/pivot_index.cc" "src/CMakeFiles/simcard.dir/index/pivot_index.cc.o" "gcc" "src/CMakeFiles/simcard.dir/index/pivot_index.cc.o.d"
  "/root/repo/src/nn/activations.cc" "src/CMakeFiles/simcard.dir/nn/activations.cc.o" "gcc" "src/CMakeFiles/simcard.dir/nn/activations.cc.o.d"
  "/root/repo/src/nn/conv1d.cc" "src/CMakeFiles/simcard.dir/nn/conv1d.cc.o" "gcc" "src/CMakeFiles/simcard.dir/nn/conv1d.cc.o.d"
  "/root/repo/src/nn/dropout.cc" "src/CMakeFiles/simcard.dir/nn/dropout.cc.o" "gcc" "src/CMakeFiles/simcard.dir/nn/dropout.cc.o.d"
  "/root/repo/src/nn/gradient_check.cc" "src/CMakeFiles/simcard.dir/nn/gradient_check.cc.o" "gcc" "src/CMakeFiles/simcard.dir/nn/gradient_check.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/CMakeFiles/simcard.dir/nn/init.cc.o" "gcc" "src/CMakeFiles/simcard.dir/nn/init.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/simcard.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/simcard.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/losses.cc" "src/CMakeFiles/simcard.dir/nn/losses.cc.o" "gcc" "src/CMakeFiles/simcard.dir/nn/losses.cc.o.d"
  "/root/repo/src/nn/monotone_head.cc" "src/CMakeFiles/simcard.dir/nn/monotone_head.cc.o" "gcc" "src/CMakeFiles/simcard.dir/nn/monotone_head.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/simcard.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/simcard.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/parameter.cc" "src/CMakeFiles/simcard.dir/nn/parameter.cc.o" "gcc" "src/CMakeFiles/simcard.dir/nn/parameter.cc.o.d"
  "/root/repo/src/nn/pool1d.cc" "src/CMakeFiles/simcard.dir/nn/pool1d.cc.o" "gcc" "src/CMakeFiles/simcard.dir/nn/pool1d.cc.o.d"
  "/root/repo/src/nn/positive_linear.cc" "src/CMakeFiles/simcard.dir/nn/positive_linear.cc.o" "gcc" "src/CMakeFiles/simcard.dir/nn/positive_linear.cc.o.d"
  "/root/repo/src/nn/sequential.cc" "src/CMakeFiles/simcard.dir/nn/sequential.cc.o" "gcc" "src/CMakeFiles/simcard.dir/nn/sequential.cc.o.d"
  "/root/repo/src/tensor/matrix.cc" "src/CMakeFiles/simcard.dir/tensor/matrix.cc.o" "gcc" "src/CMakeFiles/simcard.dir/tensor/matrix.cc.o.d"
  "/root/repo/src/tensor/ops.cc" "src/CMakeFiles/simcard.dir/tensor/ops.cc.o" "gcc" "src/CMakeFiles/simcard.dir/tensor/ops.cc.o.d"
  "/root/repo/src/workload/join_sets.cc" "src/CMakeFiles/simcard.dir/workload/join_sets.cc.o" "gcc" "src/CMakeFiles/simcard.dir/workload/join_sets.cc.o.d"
  "/root/repo/src/workload/labels.cc" "src/CMakeFiles/simcard.dir/workload/labels.cc.o" "gcc" "src/CMakeFiles/simcard.dir/workload/labels.cc.o.d"
  "/root/repo/src/workload/queries.cc" "src/CMakeFiles/simcard.dir/workload/queries.cc.o" "gcc" "src/CMakeFiles/simcard.dir/workload/queries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
