file(REMOVE_RECURSE
  "libsimcard.a"
)
