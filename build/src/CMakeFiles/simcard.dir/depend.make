# Empty dependencies file for simcard.
# This may be replaced when dependencies are built.
