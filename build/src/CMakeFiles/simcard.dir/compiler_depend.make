# Empty compiler generated dependencies file for simcard.
# This may be replaced when dependencies are built.
