# Empty compiler generated dependencies file for bench_table5_model_size.
# This may be replaced when dependencies are built.
