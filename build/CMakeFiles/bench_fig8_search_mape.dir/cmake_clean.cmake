file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_search_mape.dir/bench/bench_fig8_search_mape.cc.o"
  "CMakeFiles/bench_fig8_search_mape.dir/bench/bench_fig8_search_mape.cc.o.d"
  "bench/bench_fig8_search_mape"
  "bench/bench_fig8_search_mape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_search_mape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
