# Empty dependencies file for bench_fig12_join_setsize.
# This may be replaced when dependencies are built.
