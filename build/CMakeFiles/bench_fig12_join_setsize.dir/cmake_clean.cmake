file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_join_setsize.dir/bench/bench_fig12_join_setsize.cc.o"
  "CMakeFiles/bench_fig12_join_setsize.dir/bench/bench_fig12_join_setsize.cc.o.d"
  "bench/bench_fig12_join_setsize"
  "bench/bench_fig12_join_setsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_join_setsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
