file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_incremental.dir/bench/bench_fig15_incremental.cc.o"
  "CMakeFiles/bench_fig15_incremental.dir/bench/bench_fig15_incremental.cc.o.d"
  "bench/bench_fig15_incremental"
  "bench/bench_fig15_incremental.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
