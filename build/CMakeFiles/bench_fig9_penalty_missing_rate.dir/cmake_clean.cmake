file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_penalty_missing_rate.dir/bench/bench_fig9_penalty_missing_rate.cc.o"
  "CMakeFiles/bench_fig9_penalty_missing_rate.dir/bench/bench_fig9_penalty_missing_rate.cc.o.d"
  "bench/bench_fig9_penalty_missing_rate"
  "bench/bench_fig9_penalty_missing_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_penalty_missing_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
