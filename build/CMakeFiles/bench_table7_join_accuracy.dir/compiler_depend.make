# Empty compiler generated dependencies file for bench_table7_join_accuracy.
# This may be replaced when dependencies are built.
