# Empty compiler generated dependencies file for bench_fig11_num_segments.
# This may be replaced when dependencies are built.
