file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_num_segments.dir/bench/bench_fig11_num_segments.cc.o"
  "CMakeFiles/bench_fig11_num_segments.dir/bench/bench_fig11_num_segments.cc.o.d"
  "bench/bench_fig11_num_segments"
  "bench/bench_fig11_num_segments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_num_segments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
