file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_search_latency.dir/bench/bench_table6_search_latency.cc.o"
  "CMakeFiles/bench_table6_search_latency.dir/bench/bench_table6_search_latency.cc.o.d"
  "bench/bench_table6_search_latency"
  "bench/bench_table6_search_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_search_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
