file(REMOVE_RECURSE
  "CMakeFiles/join_planning.dir/join_planning.cc.o"
  "CMakeFiles/join_planning.dir/join_planning.cc.o.d"
  "join_planning"
  "join_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
