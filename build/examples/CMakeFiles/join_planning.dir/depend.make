# Empty dependencies file for join_planning.
# This may be replaced when dependencies are built.
