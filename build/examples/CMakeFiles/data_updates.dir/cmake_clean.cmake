file(REMOVE_RECURSE
  "CMakeFiles/data_updates.dir/data_updates.cc.o"
  "CMakeFiles/data_updates.dir/data_updates.cc.o.d"
  "data_updates"
  "data_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
