# Empty compiler generated dependencies file for data_updates.
# This may be replaced when dependencies are built.
