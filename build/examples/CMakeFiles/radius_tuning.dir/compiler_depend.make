# Empty compiler generated dependencies file for radius_tuning.
# This may be replaced when dependencies are built.
