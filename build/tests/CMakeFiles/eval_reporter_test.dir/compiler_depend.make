# Empty compiler generated dependencies file for eval_reporter_test.
# This may be replaced when dependencies are built.
