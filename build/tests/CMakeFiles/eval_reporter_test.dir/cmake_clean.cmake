file(REMOVE_RECURSE
  "CMakeFiles/eval_reporter_test.dir/eval/reporter_test.cc.o"
  "CMakeFiles/eval_reporter_test.dir/eval/reporter_test.cc.o.d"
  "eval_reporter_test"
  "eval_reporter_test.pdb"
  "eval_reporter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_reporter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
