file(REMOVE_RECURSE
  "CMakeFiles/common_serialize_test.dir/common/serialize_test.cc.o"
  "CMakeFiles/common_serialize_test.dir/common/serialize_test.cc.o.d"
  "common_serialize_test"
  "common_serialize_test.pdb"
  "common_serialize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
