# Empty dependencies file for core_qes_test.
# This may be replaced when dependencies are built.
