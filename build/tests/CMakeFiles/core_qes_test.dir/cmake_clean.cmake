file(REMOVE_RECURSE
  "CMakeFiles/core_qes_test.dir/core/qes_test.cc.o"
  "CMakeFiles/core_qes_test.dir/core/qes_test.cc.o.d"
  "core_qes_test"
  "core_qes_test.pdb"
  "core_qes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_qes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
