file(REMOVE_RECURSE
  "CMakeFiles/app_cli_app_test.dir/app/cli_app_test.cc.o"
  "CMakeFiles/app_cli_app_test.dir/app/cli_app_test.cc.o.d"
  "app_cli_app_test"
  "app_cli_app_test.pdb"
  "app_cli_app_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_cli_app_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
