# Empty dependencies file for core_join_estimator_test.
# This may be replaced when dependencies are built.
