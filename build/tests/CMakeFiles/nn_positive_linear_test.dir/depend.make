# Empty dependencies file for nn_positive_linear_test.
# This may be replaced when dependencies are built.
