file(REMOVE_RECURSE
  "CMakeFiles/nn_positive_linear_test.dir/nn/positive_linear_test.cc.o"
  "CMakeFiles/nn_positive_linear_test.dir/nn/positive_linear_test.cc.o.d"
  "nn_positive_linear_test"
  "nn_positive_linear_test.pdb"
  "nn_positive_linear_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_positive_linear_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
