# Empty compiler generated dependencies file for nn_gradient_check_test.
# This may be replaced when dependencies are built.
