file(REMOVE_RECURSE
  "CMakeFiles/nn_dropout_test.dir/nn/dropout_test.cc.o"
  "CMakeFiles/nn_dropout_test.dir/nn/dropout_test.cc.o.d"
  "nn_dropout_test"
  "nn_dropout_test.pdb"
  "nn_dropout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_dropout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
