file(REMOVE_RECURSE
  "CMakeFiles/nn_monotone_head_test.dir/nn/monotone_head_test.cc.o"
  "CMakeFiles/nn_monotone_head_test.dir/nn/monotone_head_test.cc.o.d"
  "nn_monotone_head_test"
  "nn_monotone_head_test.pdb"
  "nn_monotone_head_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_monotone_head_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
