# Empty dependencies file for nn_monotone_head_test.
# This may be replaced when dependencies are built.
