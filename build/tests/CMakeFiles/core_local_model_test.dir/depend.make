# Empty dependencies file for core_local_model_test.
# This may be replaced when dependencies are built.
