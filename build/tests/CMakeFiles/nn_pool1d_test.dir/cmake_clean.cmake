file(REMOVE_RECURSE
  "CMakeFiles/nn_pool1d_test.dir/nn/pool1d_test.cc.o"
  "CMakeFiles/nn_pool1d_test.dir/nn/pool1d_test.cc.o.d"
  "nn_pool1d_test"
  "nn_pool1d_test.pdb"
  "nn_pool1d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_pool1d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
