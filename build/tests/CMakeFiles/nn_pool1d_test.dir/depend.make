# Empty dependencies file for nn_pool1d_test.
# This may be replaced when dependencies are built.
