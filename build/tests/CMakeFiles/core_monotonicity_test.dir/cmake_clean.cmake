file(REMOVE_RECURSE
  "CMakeFiles/core_monotonicity_test.dir/core/monotonicity_test.cc.o"
  "CMakeFiles/core_monotonicity_test.dir/core/monotonicity_test.cc.o.d"
  "core_monotonicity_test"
  "core_monotonicity_test.pdb"
  "core_monotonicity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_monotonicity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
