# Empty dependencies file for core_monotonicity_test.
# This may be replaced when dependencies are built.
