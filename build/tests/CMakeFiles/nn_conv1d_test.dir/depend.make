# Empty dependencies file for nn_conv1d_test.
# This may be replaced when dependencies are built.
