# Empty dependencies file for core_global_model_test.
# This may be replaced when dependencies are built.
