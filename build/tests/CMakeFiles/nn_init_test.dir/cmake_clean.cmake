file(REMOVE_RECURSE
  "CMakeFiles/nn_init_test.dir/nn/init_test.cc.o"
  "CMakeFiles/nn_init_test.dir/nn/init_test.cc.o.d"
  "nn_init_test"
  "nn_init_test.pdb"
  "nn_init_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_init_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
