# Empty compiler generated dependencies file for nn_init_test.
# This may be replaced when dependencies are built.
