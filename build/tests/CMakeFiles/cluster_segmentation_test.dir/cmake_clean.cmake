file(REMOVE_RECURSE
  "CMakeFiles/cluster_segmentation_test.dir/cluster/segmentation_test.cc.o"
  "CMakeFiles/cluster_segmentation_test.dir/cluster/segmentation_test.cc.o.d"
  "cluster_segmentation_test"
  "cluster_segmentation_test.pdb"
  "cluster_segmentation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_segmentation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
