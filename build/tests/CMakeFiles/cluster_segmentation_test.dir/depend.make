# Empty dependencies file for cluster_segmentation_test.
# This may be replaced when dependencies are built.
