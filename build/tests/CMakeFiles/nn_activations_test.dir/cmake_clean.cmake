file(REMOVE_RECURSE
  "CMakeFiles/nn_activations_test.dir/nn/activations_test.cc.o"
  "CMakeFiles/nn_activations_test.dir/nn/activations_test.cc.o.d"
  "nn_activations_test"
  "nn_activations_test.pdb"
  "nn_activations_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_activations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
