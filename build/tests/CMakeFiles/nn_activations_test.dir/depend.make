# Empty dependencies file for nn_activations_test.
# This may be replaced when dependencies are built.
