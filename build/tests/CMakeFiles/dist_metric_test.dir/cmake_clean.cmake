file(REMOVE_RECURSE
  "CMakeFiles/dist_metric_test.dir/dist/metric_test.cc.o"
  "CMakeFiles/dist_metric_test.dir/dist/metric_test.cc.o.d"
  "dist_metric_test"
  "dist_metric_test.pdb"
  "dist_metric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dist_metric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
