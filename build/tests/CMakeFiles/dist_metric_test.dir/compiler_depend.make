# Empty compiler generated dependencies file for dist_metric_test.
# This may be replaced when dependencies are built.
