file(REMOVE_RECURSE
  "CMakeFiles/index_ground_truth_test.dir/index/ground_truth_test.cc.o"
  "CMakeFiles/index_ground_truth_test.dir/index/ground_truth_test.cc.o.d"
  "index_ground_truth_test"
  "index_ground_truth_test.pdb"
  "index_ground_truth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_ground_truth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
