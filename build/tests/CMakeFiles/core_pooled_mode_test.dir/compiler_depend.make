# Empty compiler generated dependencies file for core_pooled_mode_test.
# This may be replaced when dependencies are built.
