file(REMOVE_RECURSE
  "CMakeFiles/core_pooled_mode_test.dir/core/pooled_mode_test.cc.o"
  "CMakeFiles/core_pooled_mode_test.dir/core/pooled_mode_test.cc.o.d"
  "core_pooled_mode_test"
  "core_pooled_mode_test.pdb"
  "core_pooled_mode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_pooled_mode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
