file(REMOVE_RECURSE
  "CMakeFiles/nn_losses_test.dir/nn/losses_test.cc.o"
  "CMakeFiles/nn_losses_test.dir/nn/losses_test.cc.o.d"
  "nn_losses_test"
  "nn_losses_test.pdb"
  "nn_losses_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_losses_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
