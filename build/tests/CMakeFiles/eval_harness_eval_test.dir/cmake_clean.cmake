file(REMOVE_RECURSE
  "CMakeFiles/eval_harness_eval_test.dir/eval/harness_eval_test.cc.o"
  "CMakeFiles/eval_harness_eval_test.dir/eval/harness_eval_test.cc.o.d"
  "eval_harness_eval_test"
  "eval_harness_eval_test.pdb"
  "eval_harness_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_harness_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
