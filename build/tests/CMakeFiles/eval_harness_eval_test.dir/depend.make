# Empty dependencies file for eval_harness_eval_test.
# This may be replaced when dependencies are built.
