# Empty compiler generated dependencies file for baselines_cardnet_estimator_test.
# This may be replaced when dependencies are built.
