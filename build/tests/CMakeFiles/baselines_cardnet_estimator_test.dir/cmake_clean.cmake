file(REMOVE_RECURSE
  "CMakeFiles/baselines_cardnet_estimator_test.dir/baselines/cardnet_estimator_test.cc.o"
  "CMakeFiles/baselines_cardnet_estimator_test.dir/baselines/cardnet_estimator_test.cc.o.d"
  "baselines_cardnet_estimator_test"
  "baselines_cardnet_estimator_test.pdb"
  "baselines_cardnet_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_cardnet_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
