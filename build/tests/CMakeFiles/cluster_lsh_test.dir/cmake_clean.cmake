file(REMOVE_RECURSE
  "CMakeFiles/cluster_lsh_test.dir/cluster/lsh_test.cc.o"
  "CMakeFiles/cluster_lsh_test.dir/cluster/lsh_test.cc.o.d"
  "cluster_lsh_test"
  "cluster_lsh_test.pdb"
  "cluster_lsh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_lsh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
