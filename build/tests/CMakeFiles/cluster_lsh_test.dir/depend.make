# Empty dependencies file for cluster_lsh_test.
# This may be replaced when dependencies are built.
