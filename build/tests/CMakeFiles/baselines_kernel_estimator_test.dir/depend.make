# Empty dependencies file for baselines_kernel_estimator_test.
# This may be replaced when dependencies are built.
