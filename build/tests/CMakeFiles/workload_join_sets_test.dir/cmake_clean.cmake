file(REMOVE_RECURSE
  "CMakeFiles/workload_join_sets_test.dir/workload/join_sets_test.cc.o"
  "CMakeFiles/workload_join_sets_test.dir/workload/join_sets_test.cc.o.d"
  "workload_join_sets_test"
  "workload_join_sets_test.pdb"
  "workload_join_sets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_join_sets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
