# Empty dependencies file for workload_join_sets_test.
# This may be replaced when dependencies are built.
