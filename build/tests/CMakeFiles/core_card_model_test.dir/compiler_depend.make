# Empty compiler generated dependencies file for core_card_model_test.
# This may be replaced when dependencies are built.
