file(REMOVE_RECURSE
  "CMakeFiles/workload_labels_test.dir/workload/labels_test.cc.o"
  "CMakeFiles/workload_labels_test.dir/workload/labels_test.cc.o.d"
  "workload_labels_test"
  "workload_labels_test.pdb"
  "workload_labels_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_labels_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
