file(REMOVE_RECURSE
  "CMakeFiles/baselines_sampling_estimator_test.dir/baselines/sampling_estimator_test.cc.o"
  "CMakeFiles/baselines_sampling_estimator_test.dir/baselines/sampling_estimator_test.cc.o.d"
  "baselines_sampling_estimator_test"
  "baselines_sampling_estimator_test.pdb"
  "baselines_sampling_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_sampling_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
