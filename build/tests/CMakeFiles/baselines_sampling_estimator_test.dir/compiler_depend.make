# Empty compiler generated dependencies file for baselines_sampling_estimator_test.
# This may be replaced when dependencies are built.
