file(REMOVE_RECURSE
  "CMakeFiles/core_triangle_guards_test.dir/core/triangle_guards_test.cc.o"
  "CMakeFiles/core_triangle_guards_test.dir/core/triangle_guards_test.cc.o.d"
  "core_triangle_guards_test"
  "core_triangle_guards_test.pdb"
  "core_triangle_guards_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_triangle_guards_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
