# Empty compiler generated dependencies file for core_triangle_guards_test.
# This may be replaced when dependencies are built.
