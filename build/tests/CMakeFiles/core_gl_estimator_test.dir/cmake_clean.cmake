file(REMOVE_RECURSE
  "CMakeFiles/core_gl_estimator_test.dir/core/gl_estimator_test.cc.o"
  "CMakeFiles/core_gl_estimator_test.dir/core/gl_estimator_test.cc.o.d"
  "core_gl_estimator_test"
  "core_gl_estimator_test.pdb"
  "core_gl_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_gl_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
