# Empty compiler generated dependencies file for core_gl_estimator_test.
# This may be replaced when dependencies are built.
