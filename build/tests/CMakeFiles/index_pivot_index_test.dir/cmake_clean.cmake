file(REMOVE_RECURSE
  "CMakeFiles/index_pivot_index_test.dir/index/pivot_index_test.cc.o"
  "CMakeFiles/index_pivot_index_test.dir/index/pivot_index_test.cc.o.d"
  "index_pivot_index_test"
  "index_pivot_index_test.pdb"
  "index_pivot_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_pivot_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
