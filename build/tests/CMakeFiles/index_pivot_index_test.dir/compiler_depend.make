# Empty compiler generated dependencies file for index_pivot_index_test.
# This may be replaced when dependencies are built.
