file(REMOVE_RECURSE
  "CMakeFiles/nn_parameter_test.dir/nn/parameter_test.cc.o"
  "CMakeFiles/nn_parameter_test.dir/nn/parameter_test.cc.o.d"
  "nn_parameter_test"
  "nn_parameter_test.pdb"
  "nn_parameter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_parameter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
