file(REMOVE_RECURSE
  "CMakeFiles/common_stopwatch_test.dir/common/stopwatch_test.cc.o"
  "CMakeFiles/common_stopwatch_test.dir/common/stopwatch_test.cc.o.d"
  "common_stopwatch_test"
  "common_stopwatch_test.pdb"
  "common_stopwatch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_stopwatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
