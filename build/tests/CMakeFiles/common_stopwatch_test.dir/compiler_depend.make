# Empty compiler generated dependencies file for common_stopwatch_test.
# This may be replaced when dependencies are built.
