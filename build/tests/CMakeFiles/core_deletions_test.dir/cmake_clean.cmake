file(REMOVE_RECURSE
  "CMakeFiles/core_deletions_test.dir/core/deletions_test.cc.o"
  "CMakeFiles/core_deletions_test.dir/core/deletions_test.cc.o.d"
  "core_deletions_test"
  "core_deletions_test.pdb"
  "core_deletions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_deletions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
