# Empty compiler generated dependencies file for core_invert_cardinality_test.
# This may be replaced when dependencies are built.
