file(REMOVE_RECURSE
  "CMakeFiles/core_invert_cardinality_test.dir/core/invert_cardinality_test.cc.o"
  "CMakeFiles/core_invert_cardinality_test.dir/core/invert_cardinality_test.cc.o.d"
  "core_invert_cardinality_test"
  "core_invert_cardinality_test.pdb"
  "core_invert_cardinality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_invert_cardinality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
