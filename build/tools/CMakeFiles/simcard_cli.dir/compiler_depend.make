# Empty compiler generated dependencies file for simcard_cli.
# This may be replaced when dependencies are built.
