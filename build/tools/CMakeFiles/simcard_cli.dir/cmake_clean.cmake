file(REMOVE_RECURSE
  "CMakeFiles/simcard_cli.dir/simcard_cli.cc.o"
  "CMakeFiles/simcard_cli.dir/simcard_cli.cc.o.d"
  "simcard_cli"
  "simcard_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simcard_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
